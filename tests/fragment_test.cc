// Tests for FRAGMENT: unreliable-but-persistent bulk transfer.

#include "src/rpc/fragment.h"

#include <gtest/gtest.h>

#include "src/app/anchor.h"
#include "src/app/stacks.h"
#include "src/proto/topology.h"
#include "tests/test_util.h"

namespace xk {
namespace {

// Fixture: FRAGMENT-VIP on both hosts, raw echo-less anchors (we drive
// FRAGMENT directly and observe deliveries with TestAnchor).
struct FragmentFixture : ::testing::Test {
  void SetUp() override {
    net = Internet::TwoHosts();
    ch = &net->host("client");
    sh = &net->host("server");
    cstack = BuildPartial(*ch, 1);
    sstack = BuildPartial(*sh, 1);
    RunIn(*ch->kernel, [&] { ca = &ch->kernel->Emplace<TestAnchor>(*ch->kernel); });
    RunIn(*sh->kernel, [&] {
      sa = &sh->kernel->Emplace<TestAnchor>(*sh->kernel);
      ParticipantSet enable;
      enable.local.rel_proto = kRelProtoRawTest;
      EXPECT_TRUE(sstack.fragment->OpenEnable(*sa, enable).ok());
    });
  }

  SessionRef OpenToServer() {
    SessionRef out;
    RunIn(*ch->kernel, [&] {
      ParticipantSet parts;
      parts.peer.host = sh->kernel->ip_addr();
      parts.local.rel_proto = kRelProtoRawTest;
      Result<SessionRef> sess = cstack.fragment->Open(*ca, parts);
      ASSERT_TRUE(sess.ok());
      out = *sess;
    });
    return out;
  }

  void Send(const SessionRef& sess, std::vector<uint8_t> payload) {
    RunIn(*ch->kernel, [&] {
      Message msg = Message::FromBytes(payload);
      EXPECT_TRUE(sess->Push(msg).ok());
    });
  }

  std::unique_ptr<Internet> net;
  HostStack* ch = nullptr;
  HostStack* sh = nullptr;
  RpcStack cstack, sstack;
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
};

TEST_F(FragmentFixture, SingleFragmentFastPath) {
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(512, 1));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(512, 1));
  EXPECT_EQ(cstack.fragment->stats().fragments_sent, 1u);
}

TEST_F(FragmentFixture, SixteenKMessageIsSixteenFragments) {
  // "For each 16k-byte message, FRAGMENT handles 16 messages."
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(16384, 2));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(16384, 2));
  EXPECT_EQ(cstack.fragment->stats().fragments_sent, 16u);
}

TEST_F(FragmentFixture, OversizeRejected) {
  SessionRef sess = OpenToServer();
  RunIn(*ch->kernel, [&] {
    Message msg(FragmentProtocol::kMaxMessage + 1);
    EXPECT_EQ(sess->Push(msg).code(), StatusCode::kTooBig);
  });
}

TEST_F(FragmentFixture, UnevenLastFragment) {
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(2500, 3));  // 1024 + 1024 + 452
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(2500, 3));
  EXPECT_EQ(cstack.fragment->stats().fragments_sent, 3u);
}

TEST_F(FragmentFixture, LostFragmentRecoveredByNack) {
  // Persistence: a dropped middle fragment is requested and resent; the
  // message is still delivered, with NO positive acknowledgement ever sent.
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 1 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(4096, 4));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(4096, 4));
  EXPECT_GE(sstack.fragment->stats().nacks_sent, 1u);
  EXPECT_GE(cstack.fragment->stats().nacks_received, 1u);
  EXPECT_EQ(cstack.fragment->stats().fragments_resent, 1u);
}

TEST_F(FragmentFixture, MultipleLostFragmentsRecovered) {
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return (index == 0 || index == 2 || index == 5) ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(8192, 5));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(8192, 5));
  EXPECT_EQ(cstack.fragment->stats().fragments_resent, 3u);
}

TEST_F(FragmentFixture, AllFragmentsLostAbandonsAfterMaxNacks) {
  // If the sender is gone (every frame dropped), the receiver's NACKs go
  // unanswered and reassembly is abandoned -- FRAGMENT stays unreliable.
  int delivered = 0;
  net->segment(0).set_fault_hook([&](const EthFrame&, int receiver, uint64_t) {
    // Let exactly one data fragment through to start reassembly, then cut
    // the client->server direction; NACKs (server->client) also die.
    (void)receiver;
    return ++delivered <= 1 ? LinkFault::kDeliver : LinkFault::kDrop;
  });
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(4096, 6));
  net->RunAll();
  EXPECT_EQ(sa->received.size(), 0u);
  EXPECT_EQ(sstack.fragment->stats().reassembly_abandoned, 1u);
  EXPECT_EQ(sstack.fragment->stats().nacks_sent,
            static_cast<uint64_t>(3));  // max_nacks default
}

TEST_F(FragmentFixture, StaleNackAfterCacheExpiry) {
  // Make the send cache expire before the receiver's NACK arrives.
  RunIn(*ch->kernel, [&] { cstack.fragment->set_send_cache_timeout(Msec(5)); });
  RunIn(*sh->kernel, [&] { sstack.fragment->set_nack_delay(Msec(50)); });
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 1 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(3000, 7));
  net->RunAll();
  EXPECT_EQ(sa->received.size(), 0u);  // never completed
  EXPECT_EQ(cstack.fragment->stats().cache_expirations, 1u);
  EXPECT_GE(cstack.fragment->stats().stale_nacks, 1u);
  EXPECT_EQ(sstack.fragment->stats().reassembly_abandoned, 1u);
}

TEST_F(FragmentFixture, DuplicateFragmentsIgnoredDuringReassembly) {
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index < 2 ? LinkFault::kDuplicate : LinkFault::kDeliver;
  });
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(4000, 8));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(4000, 8));
}

TEST_F(FragmentFixture, LateDuplicateOfCompletedMessageSuppressed) {
  // Duplicate every frame: the second copies arrive after completion and must
  // not rebuild reassembly state or deliver twice (recent-window check).
  net->segment(0).set_fault_hook(
      [](const EthFrame&, int, uint64_t) { return LinkFault::kDuplicate; });
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(2048, 9));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
}

TEST_F(FragmentFixture, DuplicateOfSingleFragmentMessageDeliversTwice) {
  // FRAGMENT is unreliable: duplicates of single-fragment messages MAY be
  // delivered twice (the higher level filters). This distinguishes it from a
  // reliable protocol.
  net->segment(0).set_fault_hook(
      [](const EthFrame&, int, uint64_t) { return LinkFault::kDuplicate; });
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(100, 10));
  net->RunAll();
  EXPECT_EQ(sa->received.size(), 2u);
}

TEST_F(FragmentFixture, ResendIsIndependentMessage) {
  // "FRAGMENT treats the second incarnation of the message as an independent
  // message; i.e., it is assigned a new FRAGMENT-level sequence number."
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(64, 11));
  Send(sess, PatternBytes(64, 11));  // higher level resends the same bytes
  net->RunAll();
  EXPECT_EQ(sa->received.size(), 2u);
  EXPECT_EQ(cstack.fragment->stats().messages_sent, 2u);
}

TEST_F(FragmentFixture, InterleavedMessagesReassembleIndependently) {
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(3000, 1));
  Send(sess, PatternBytes(3000, 2));
  Send(sess, PatternBytes(100, 3));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 3u);
  EXPECT_EQ(sa->received[0], PatternBytes(3000, 1));
  EXPECT_EQ(sa->received[1], PatternBytes(3000, 2));
  EXPECT_EQ(sa->received[2], PatternBytes(100, 3));
}

TEST_F(FragmentFixture, BidirectionalTrafficOnOneSession) {
  SessionRef csess = OpenToServer();
  Send(csess, PatternBytes(50, 1));
  net->RunAll();
  ASSERT_EQ(sa->accepted.size(), 1u);
  SessionRef ssess = sa->accepted[0];
  RunIn(*sh->kernel, [&] {
    Message back = Message::FromBytes(PatternBytes(2222, 2));
    EXPECT_TRUE(ssess->Push(back).ok());
  });
  net->RunAll();
  ASSERT_EQ(ca->received.size(), 1u);
  EXPECT_EQ(ca->received[0], PatternBytes(2222, 2));
}

TEST_F(FragmentFixture, ControlOps) {
  RunIn(*ch->kernel, [&] {
    ControlArgs args;
    EXPECT_TRUE(cstack.fragment->Control(ControlOp::kGetMaxPacket, args).ok());
    EXPECT_EQ(args.u64, FragmentProtocol::kMaxMessage);
    EXPECT_TRUE(cstack.fragment->Control(ControlOp::kGetOptPacket, args).ok());
    EXPECT_EQ(args.u64, FragmentProtocol::kFragSize);
    // What FRAGMENT tells VIP at open time: one fragment + header.
    EXPECT_TRUE(cstack.fragment->Control(ControlOp::kGetMaxSendSize, args).ok());
    EXPECT_EQ(args.u64, FragmentProtocol::kFragSize + FragmentProtocol::kHeaderSize);
  });
}

TEST_F(FragmentFixture, VipSeesFragmentAsSmallSender) {
  // Because FRAGMENT reports max send = 1047 bytes, VIP under it opens the
  // ETH path only for a local peer.
  SessionRef sess = OpenToServer();
  Send(sess, PatternBytes(8000, 12));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(ch->ip->stats().datagrams_sent, 0u);  // everything went raw ETH
}

// Property: random payload sizes survive random loss patterns (within the
// NACK budget) or are cleanly abandoned -- never corrupted, never duplicated
// for multi-fragment messages.
class FragmentLossPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FragmentLossPropertyTest, RandomSizesSurviveRandomLoss) {
  Rng rng(GetParam());
  auto net = Internet::TwoHosts();
  auto& ch = net->host("client");
  auto& sh = net->host("server");
  RpcStack cstack = BuildPartial(ch, 1);
  RpcStack sstack = BuildPartial(sh, 1);
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
  RunIn(*ch.kernel, [&] { ca = &ch.kernel->Emplace<TestAnchor>(*ch.kernel); });
  RunIn(*sh.kernel, [&] {
    sa = &sh.kernel->Emplace<TestAnchor>(*sh.kernel);
    ParticipantSet enable;
    enable.local.rel_proto = kRelProtoRawTest;
    EXPECT_TRUE(sstack.fragment->OpenEnable(*sa, enable).ok());
  });
  // Drop ~10% of frames, but never NACKs' retransmissions forever: cap drops.
  int drops_left = 6;
  net->segment(0).set_fault_hook([&](const EthFrame&, int, uint64_t) {
    if (drops_left > 0 && rng.Chance(0.1)) {
      --drops_left;
      return LinkFault::kDrop;
    }
    return LinkFault::kDeliver;
  });

  std::vector<std::vector<uint8_t>> sent;
  SessionRef sess;
  RunIn(*ch.kernel, [&] {
    ParticipantSet parts;
    parts.peer.host = sh.kernel->ip_addr();
    parts.local.rel_proto = kRelProtoRawTest;
    Result<SessionRef> r = cstack.fragment->Open(*ca, parts);
    ASSERT_TRUE(r.ok());
    sess = *r;
  });
  for (int i = 0; i < 8; ++i) {
    auto payload = PatternBytes(rng.NextInRange(1, 16384), static_cast<uint8_t>(i));
    sent.push_back(payload);
    RunIn(*ch.kernel, [&] {
      Message msg = Message::FromBytes(payload);
      EXPECT_TRUE(sess->Push(msg).ok());
    });
    net->RunAll();
  }
  // Every delivered message must exactly equal one of the sent ones, in
  // order (some may be missing; none may be corrupted).
  size_t next = 0;
  for (const auto& got : sa->received) {
    while (next < sent.size() && sent[next] != got) {
      ++next;
    }
    ASSERT_LT(next, sent.size()) << "delivered message matches nothing sent";
    ++next;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentLossPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace xk
