#include "src/sim/link.h"

#include <cassert>
#include <utility>

#include "src/sim/object_pool.h"
#include "src/stat/timeseries.h"
#include "src/trace/pcap.h"
#include "src/trace/trace.h"

namespace xk {

namespace {
EthAddr AddrAt(const std::vector<uint8_t>& bytes, size_t off) {
  std::array<uint8_t, 6> a = {};
  if (bytes.size() >= off + 6) {
    for (size_t i = 0; i < 6; ++i) {
      a[i] = bytes[off + i];
    }
  }
  return EthAddr(a);
}
}  // namespace

EthAddr EthFrame::Dst() const { return AddrAt(bytes, 0); }
EthAddr EthFrame::Src() const { return AddrAt(bytes, 6); }

EthernetSegment::EthernetSegment(EventQueue& events, WireModel wire, uint64_t fault_seed)
    : events_(events), wire_(wire), rng_(fault_seed) {}

int EthernetSegment::Attach(EthAddr addr, FrameSink* sink, Kernel* kernel) {
  // A restarting host reclaims its old slot so station ids (and with them the
  // sender ids captured by upper layers) stay stable across crash/restart.
  for (size_t i = 0; i < stations_.size(); ++i) {
    if (stations_[i].sink == nullptr && stations_[i].addr == addr) {
      stations_[i].sink = sink;
      stations_[i].kernel = kernel;
      return static_cast<int>(i);
    }
  }
  stations_.push_back(Station{addr, sink, kernel});
  return static_cast<int>(stations_.size()) - 1;
}

void EthernetSegment::Detach(int id) { stations_[id].sink = nullptr; }

uint64_t EthernetSegment::down_drops() const {
  uint64_t total = 0;
  for (const Station& st : stations_) {
    total += st.down_drops;
  }
  return total;
}

void EthernetSegment::FireDelivery(int receiver_id, const EthFrame& frame) {
  Station& st = stations_[receiver_id];
  if (st.sink == nullptr) {
    ++st.down_drops;
    return;
  }
  st.sink->FrameArrived(frame);
}

void EthernetSegment::DeliverAt(SimTime at, std::shared_ptr<const EthFrame> frame,
                                int receiver_id, FrameDeliverer* deliverer) {
  if (deliverer != nullptr) {
    deliverer->Deliver(*this, at, stations_[receiver_id].sink, receiver_id, std::move(frame));
    return;
  }
  // The sink is looked up when the event fires, not here: the receiver may
  // crash (detach) while the frame is in flight.
  events_.ScheduleAt(at,
                     [this, receiver_id, f = std::move(frame)]() { FireDelivery(receiver_id, *f); });
}

void EthernetSegment::Transmit(int sender_id, std::shared_ptr<EthFrame> frame,
                               SimTime ready_at) {
  if (transmit_sink_ != nullptr) {
    transmit_sink_->OnTransmit(*this, sender_id, std::move(frame), ready_at);
    return;
  }
  ProcessTransmit(sender_id, std::move(frame), ready_at, nullptr);
}

void EthernetSegment::Transmit(int sender_id, EthFrame frame, SimTime ready_at) {
  auto pooled = AcquirePooled<EthFrame>();
  *pooled = std::move(frame);
  Transmit(sender_id, std::move(pooled), ready_at);
}

void EthernetSegment::ProcessTransmit(int sender_id, std::shared_ptr<EthFrame> frame,
                                      SimTime ready_at, FrameDeliverer* deliverer) {
  assert(sender_id >= 0 && static_cast<size_t>(sender_id) < stations_.size());
  const SimTime start = ready_at > bus_free_at_ ? ready_at : bus_free_at_;
  const SimTime tx = wire_.TransmitTime(frame->bytes.size());
  const SimTime end = start + tx;
  bus_free_at_ = end;
  bus_busy_time_ += tx;
  ++frames_sent_;
  bytes_sent_ += frame->bytes.size();

  // Queueing statistics. Frames whose start is at or before our ready time
  // have begun transmitting; the rest (plus this frame, if it had to wait)
  // are queued behind the bus.
  while (!pending_starts_.empty() && pending_starts_.front() <= ready_at) {
    pending_starts_.pop_front();
  }
  const SimTime wait = start - ready_at;
  pending_starts_.push_back(start);
  const uint64_t depth = pending_starts_.size() - (wait == 0 ? 1 : 0);
  if (wait > 0) {
    ++queued_frames_;
  }
  queue_depth_sum_ += depth;
  if (depth > peak_queue_depth_) {
    peak_queue_depth_ = depth;
  }
  queue_wait_.Record(wait);

  // Receivers share one immutable buffer; only a corrupted delivery copies.
  const std::shared_ptr<const EthFrame> shared = std::move(frame);
  const EthAddr dst = shared->Dst();
  const bool broadcast = dst.IsBroadcast();
  const SimTime arrival = end + wire_.propagation;

  if (trace_ != nullptr) {
    trace_->RecordWire(observer_id_, start, end, arrival, shared->bytes.size(), depth, wait,
                       shared->trace_msg_id);
  }
  if (stats_ != nullptr) {
    stats_->OnTransmit(start, tx, shared->bytes.size(), depth);
  }

  // Serial path: collect this transmission's deliveries and fold same-time
  // ones into a single heap event (FlushBatchedDeliveries). The parallel
  // engine hands deliveries to `deliverer` per receiver and stays unbatched.
  const bool batching = deliverer == nullptr && batched_delivery_;

  for (size_t i = 0; i < stations_.size(); ++i) {
    const int rid = static_cast<int>(i);
    if (rid == sender_id) {
      continue;
    }
    if (!broadcast && stations_[i].addr != dst) {
      continue;
    }
    const uint64_t index = delivery_index_++;
    CaptureVerdict verdict = CaptureVerdict::kDelivered;
    if (drop_rate_ > 0.0 && rng_.Chance(drop_rate_)) {
      ++frames_dropped_;
      ++random_drops_;
      verdict = CaptureVerdict::kDropped;
    } else {
      DeliveryFault fault;
      if (fault_hook_ex_) {
        fault = fault_hook_ex_(*shared, rid, index, arrival);
      } else if (fault_hook_) {
        fault.verdict = fault_hook_(*shared, rid, index);
      }
      const SimTime at = arrival + fault.extra_delay;
      if (fault.extra_delay > 0) {
        ++fault_delays_;
      }
      switch (fault.verdict) {
        case LinkFault::kDrop:
          ++frames_dropped_;
          ++fault_drops_;
          verdict = CaptureVerdict::kDropped;
          break;
        case LinkFault::kDuplicate:
          ++fault_duplicates_;
          verdict = CaptureVerdict::kDuplicated;
          if (batching) {
            batch_scratch_.push_back(BatchMember{at, rid, shared});
            batch_scratch_.push_back(BatchMember{at + tx, rid, shared});
          } else {
            DeliverAt(at, shared, rid, deliverer);
            DeliverAt(at + tx, shared, rid, deliverer);
          }
          break;
        case LinkFault::kCorrupt: {
          ++fault_corruptions_;
          verdict = CaptureVerdict::kCorrupted;
          EthFrame bad = *shared;
          if (!bad.bytes.empty()) {
            const size_t off =
                fault.corrupt_offset < bad.bytes.size() ? fault.corrupt_offset : bad.bytes.size() - 1;
            bad.bytes[off] ^= 0xFF;
          }
          auto bad_frame = AcquirePooled<EthFrame>();
          *bad_frame = std::move(bad);
          if (batching) {
            batch_scratch_.push_back(BatchMember{at, rid, std::move(bad_frame)});
          } else {
            DeliverAt(at, std::move(bad_frame), rid, deliverer);
          }
          break;
        }
        case LinkFault::kDeliver:
          if (batching) {
            batch_scratch_.push_back(BatchMember{at, rid, shared});
          } else {
            DeliverAt(at, shared, rid, deliverer);
          }
          break;
      }
    }
    if (capture_ != nullptr) {
      capture_->Record(observer_id_, rid, start, arrival, shared->bytes, verdict);
    }
  }
  if (batching && !batch_scratch_.empty()) {
    FlushBatchedDeliveries();
  }
}

void EthernetSegment::FlushBatchedDeliveries() {
  // Greedy scan by first appearance: every member sharing a timestamp joins
  // one event, fired in creation order -- which is exactly the order the
  // unbatched schedule would fire them (they hold adjacent sequence numbers,
  // and no other same-time event can sit between). Members folded into a
  // group are marked rid = -1.
  for (size_t i = 0; i < batch_scratch_.size(); ++i) {
    BatchMember& head = batch_scratch_[i];
    if (head.rid < 0) {
      continue;
    }
    size_t n = 1;
    for (size_t j = i + 1; j < batch_scratch_.size(); ++j) {
      if (batch_scratch_[j].rid >= 0 && batch_scratch_[j].at == head.at) {
        ++n;
      }
    }
    if (n == 1) {
      events_.ScheduleAt(head.at, [this, rid = head.rid, f = std::move(head.frame)]() {
        FireDelivery(rid, *f);
      });
      head.rid = -1;
      continue;
    }
    std::vector<BatchMember> group;
    group.reserve(n);
    group.push_back(std::move(head));
    head.rid = -1;
    for (size_t j = i + 1; j < batch_scratch_.size(); ++j) {
      BatchMember& m = batch_scratch_[j];
      if (m.rid >= 0 && m.at == group.front().at) {
        group.push_back(std::move(m));
        m.rid = -1;
      }
    }
    const SimTime group_at = group.front().at;
    events_.ScheduleAt(group_at, [this, g = std::move(group)]() {
      for (const BatchMember& m : g) {
        FireDelivery(m.rid, *m.frame);
      }
      // One scheduled event stands in for g.size() unbatched ones; keep the
      // fired-event count identical to the unbatched schedule.
      events_.AddExtraFired(g.size() - 1);
    });
  }
  batch_scratch_.clear();
}

void EthernetSegment::ResetStats() {
  frames_sent_ = 0;
  bytes_sent_ = 0;
  frames_dropped_ = 0;
  random_drops_ = 0;
  fault_drops_ = 0;
  fault_duplicates_ = 0;
  fault_corruptions_ = 0;
  fault_delays_ = 0;
  for (Station& st : stations_) {
    st.down_drops = 0;
  }
  bus_busy_time_ = 0;
  queued_frames_ = 0;
  peak_queue_depth_ = 0;
  queue_depth_sum_ = 0;
  queue_wait_.Reset();
}

}  // namespace xk
