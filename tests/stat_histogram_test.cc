// Unit tests for the HDR-style log-linear histogram (src/stat/histogram).

#include "src/stat/histogram.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace xk {
namespace {

TEST(HistogramBuckets, ExactBelowSubBuckets) {
  for (SimTime v = 0; v < Histogram::kSubBuckets; ++v) {
    const int b = Histogram::BucketIndex(v);
    EXPECT_EQ(b, static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLow(b), v);
    EXPECT_EQ(Histogram::BucketHigh(b), v);
  }
}

TEST(HistogramBuckets, CoverAndAreContiguous) {
  // Every bucket's range covers exactly the values that map to it, and
  // consecutive buckets tile the number line with no gap or overlap.
  for (int b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    const SimTime lo = Histogram::BucketLow(b);
    const SimTime hi = Histogram::BucketHigh(b);
    ASSERT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(lo), b);
    EXPECT_EQ(Histogram::BucketIndex(hi), b);
    EXPECT_EQ(Histogram::BucketLow(b + 1), hi + 1) << "gap after bucket " << b;
  }
}

TEST(HistogramBuckets, OctaveBoundaries) {
  // The interesting seams: the linear/log transition at 32 and the first
  // octave rollover at 64.
  for (const SimTime v : {31, 32, 33, 63, 64, 65, 127, 128, 1023, 1024, 1025}) {
    const int b = Histogram::BucketIndex(v);
    EXPECT_LE(Histogram::BucketLow(b), v);
    EXPECT_GE(Histogram::BucketHigh(b), v);
    // Relative width bound: high - low < low / kSubBuckets + 1.
    const SimTime width = Histogram::BucketHigh(b) - Histogram::BucketLow(b);
    EXPECT_LE(width * Histogram::kSubBuckets, Histogram::BucketLow(b));
  }
  EXPECT_EQ(Histogram::BucketIndex(31), Histogram::BucketIndex(32) - 1);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
  h.Record(100);
  h.Record(300);
  h.Record(200);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 300);
  EXPECT_EQ(h.sum(), 600);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.Record(-50);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0);
}

TEST(Histogram, QuantileErrorBound) {
  // Deterministic pseudo-random values spanning several octaves; a reported
  // quantile is never below the exact one and overshoots by at most one
  // sub-bucket (relative error <= 1/32 = 3.125%).
  Histogram h;
  std::vector<SimTime> vals;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const SimTime v = static_cast<SimTime>(x % 5000000ull);
    vals.push_back(v);
    h.Record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(vals.size()));
    if (rank > 0) {
      --rank;
    }
    const SimTime exact = vals[std::min(rank, vals.size() - 1)];
    const SimTime got = h.ValueAtQuantile(q);
    EXPECT_GE(got, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(got),
              static_cast<double>(exact) * (1.0 + 1.0 / Histogram::kSubBuckets) + 1.0)
        << "q=" << q;
  }
  EXPECT_EQ(h.ValueAtQuantile(1.0), h.max());
}

TEST(Histogram, MergeEquivalentToCombinedRecording) {
  Histogram a, b, combined;
  for (SimTime v = 1; v < 4000; v += 7) {
    a.Record(v);
    combined.Record(v);
  }
  for (SimTime v = 100000; v < 900000; v += 1111) {
    b.Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.sum(), combined.sum());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.ValueAtQuantile(q), combined.ValueAtQuantile(q)) << "q=" << q;
  }
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(123456);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0);
}

TEST(Histogram, JsonBlockShape) {
  Histogram h;
  h.Record(Msec(1));
  h.Record(Msec(2));
  std::string out;
  AppendPercentilesMsJson(out, h, "percentiles");
  EXPECT_EQ(out.rfind("\"percentiles\": {\"count\": 2", 0), 0u) << out;
  EXPECT_NE(out.find("\"p50_ms\":"), std::string::npos);
  EXPECT_NE(out.find("\"p999_ms\":"), std::string::npos);
  EXPECT_NE(out.find("\"max_ms\": 2"), std::string::npos);
  EXPECT_EQ(out.back(), '}');
  // Deterministic: same records, byte-identical block.
  std::string again;
  AppendPercentilesMsJson(again, h, "percentiles");
  EXPECT_EQ(out, again);
}

}  // namespace
}  // namespace xk
