#include "src/rpc/channel.h"

#include "src/core/wire.h"
#include "src/trace/trace.h"

namespace xk {

namespace {
constexpr uint16_t kFlagRequest = 0x1;
constexpr uint16_t kFlagReply = 0x2;
constexpr uint16_t kFlagAck = 0x4;        // explicit "still working on it"
constexpr uint16_t kFlagPleaseAck = 0x8;  // retransmitted request asks for one
constexpr uint16_t kFlagDeadline = 0x10;  // header carries an 8-byte absolute
                                          // deadline extension after boot_id

// Size of the optional deadline extension (absolute sim-clock ns, u64).
constexpr size_t kDeadlineExtSize = 8;

// One whole retransmission token, in parts-per-million.
constexpr uint64_t kTokenPpm = 1000000;

// Adaptive-RTO bounds (consulted only with kSetAdaptiveTimeout on).
constexpr SimTime kRtoFloor = Msec(10);
constexpr SimTime kRtoCap = Msec(2000);
}  // namespace

// ---------------------------------------------------------------------------
// ChannelProtocol
// ---------------------------------------------------------------------------

ChannelProtocol::ChannelProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : Protocol(kernel, std::move(name), {lower}), active_(*this), passive_(*this) {
  MarkIdleCapable();
  ParticipantSet enable;
  enable.local.ip_proto = kIpProtoChannel;
  enable.local.rel_proto = kRelProtoChannel;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

bool ChannelProtocol::EvictSession(Session& s) {
  auto& cs = static_cast<ChannelSession&>(s);
  // SELECT's pre-opened channel pools (and any other upper layer caching the
  // channel) hold their own refs; such channels stay until their owner lets
  // go. CanEvict already vetoed in-flight calls and quarantined saved
  // replies.
  if (cs.weak_from_this().use_count() > 1) {
    return false;
  }
  active_.Unbind(Key{cs.peer_, cs.channel_, cs.proto_});
  return true;
}

void ChannelProtocol::RefillBudget() {
  if (retry_ratio_ppm_ == 0) {
    return;
  }
  retry_tokens_ppm_ += retry_ratio_ppm_;
  const uint64_t cap = retry_burst_ * kTokenPpm;
  if (retry_tokens_ppm_ > cap) {
    retry_tokens_ppm_ = cap;
  }
}

SimTime ChannelProtocol::EvictQuarantine() const {
  // Worst-case wait before one retransmission: the step-function timeout
  // grows with the request's fragment count (covered up to 8 fragments here,
  // beyond every workload in the repo) and quadruples once the server has
  // explicitly acked; the adaptive path is bounded by the backoff cap plus
  // its 1/8 jitter. The peer gives up after retry_limit_ retries, so after
  // (retry_limit_ + 1) such waits of silence no duplicate can still arrive.
  SimTime per_try = base_timeout_ * 8 * 4;
  if (adaptive_timeout_) {
    const SimTime capped = kRtoCap + kRtoCap / 8;
    if (capped * 4 > per_try) {
      per_try = capped * 4;
    }
  }
  return static_cast<SimTime>(retry_limit_ + 1) * per_try;
}

bool ChannelSession::CanEvict() const {
  if (pending_.has_value() || in_progress_) {
    return false;
  }
  if (!saved_reply_.has_value()) {
    return true;  // fully acknowledged: a late duplicate cannot exist
  }
  return kernel().now() - last_active() >= chan_.EvictQuarantine();
}

Result<SessionRef> ChannelProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  // Protocols that do not manage channel ids themselves (e.g. SUN_SELECT when
  // CHANNEL replaces REQUEST_REPLY) get channel 0.
  const uint16_t channel_id = parts.local.channel.value_or(0);
  const Key key{*parts.peer.host, channel_id, *parts.local.rel_proto};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  ParticipantSet lparts;
  lparts.peer.host = *parts.peer.host;
  lparts.local.ip_proto = kIpProtoChannel;       // read by VIP/IP lowers
  lparts.local.rel_proto = kRelProtoChannel;     // read by FRAGMENT/VIP_SIZE lowers
  Result<SessionRef> lower_sess = lower(0)->Open(*this, lparts);
  if (!lower_sess.ok()) {
    return lower_sess.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = pool_.Create(*this, &hlp, *parts.peer.host, channel_id, *parts.local.rel_proto,
                           *lower_sess);
  active_.Bind(key, sess);
  TrackIdle(*sess);
  return SessionRef(sess);
}

Status ChannelProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  Protocol* existing = nullptr;
  if (!passive_.TryBind(*parts.local.rel_proto, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(*parts.local.rel_proto, &hlp);  // re-enable recharges
  }
  return OkStatus();
}

Status ChannelProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(raw);
  const uint16_t flags = r.GetU16();
  const uint16_t channel = r.GetU16();
  const RelProtoNum proto = r.GetU32();
  const uint32_t seq = r.GetU32();
  const uint16_t error = r.GetU16();
  const uint32_t boot_id = r.GetU32();
  if (flags & kFlagDeadline) {
    uint8_t ext[kDeadlineExtSize];
    if (!msg.PopHeader(ext)) {
      return ErrStatus(StatusCode::kInvalidArgument);
    }
    kernel().ChargeHdrLoad(kDeadlineExtSize);
    WireReader er(ext);
    msg.set_deadline(static_cast<SimTime>(er.GetU64()));
  }

  // The peer's address comes from the delivering session, not the header
  // (CHANNEL deliberately carries no host addresses -- FRAGMENT or IP below
  // know them).
  IpAddr peer;
  if (lls != nullptr) {
    ControlArgs args;
    if (lls->Control(ControlOp::kGetPeerHost, args).ok()) {
      peer = args.ip;
    }
  }
  const Key key{peer, channel, proto};
  SessionRef sess = active_.Resolve(key);
  if (sess == nullptr) {
    Protocol* hlp = passive_.Resolve(proto);
    if (hlp == nullptr || lls == nullptr) {
      kernel().Tracef(2, "channel: no binding for proto %u", proto);
      return ErrStatus(StatusCode::kNotFound);
    }
    kernel().ChargeSessionCreate();
    auto created = pool_.Create(*this, hlp, peer, channel, proto, lls->Ref());
    active_.Bind(key, created);
    TrackIdle(*created);
    ParticipantSet up;
    up.local.rel_proto = proto;
    up.local.channel = channel;
    up.peer.host = peer;
    Status s = hlp->OpenDoneUp(*this, created, up);
    if (!s.ok()) {
      active_.Unbind(key);
      return s;
    }
    sess = created;
  }
  return static_cast<ChannelSession*>(sess.get())
      ->HandlePacket(flags, seq, error, boot_id, msg, lls);
}

Status ChannelProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetRetransmits:
      args.u64 = stats_.retransmissions;
      return OkStatus();
    case ControlOp::kGetDuplicatesDropped:
      args.u64 = stats_.duplicates_suppressed;
      return OkStatus();
    case ControlOp::kSetTimeoutBase:
      base_timeout_ = static_cast<SimTime>(args.u64);
      return OkStatus();
    case ControlOp::kSetRetransmitLimit:
      retry_limit_ = static_cast<int>(args.u64);
      return OkStatus();
    case ControlOp::kGetTimeouts:
      args.u64 = stats_.timeouts;
      return OkStatus();
    case ControlOp::kSetAdaptiveTimeout:
      adaptive_timeout_ = args.u64 != 0;
      return OkStatus();
    case ControlOp::kSetRetryBudget:
      retry_burst_ = args.u64 >> 32;
      retry_ratio_ppm_ = args.u64 & 0xFFFFFFFFu;
      retry_tokens_ppm_ = retry_burst_ * kTokenPpm;  // bucket starts full
      return OkStatus();
    case ControlOp::kGetRetryBudgetTokens:
      args.u64 = retry_tokens_ppm_;
      return OkStatus();
    case ControlOp::kGetMaxSendSize:
      // CHANNEL adds a header but does not fragment; it depends on the layer
      // below to carry (or split) what its own clients push.
      return lower(0)->Control(ControlOp::kGetMaxPacket, args);
    default:
      return Protocol::DoControl(op, args);
  }
}

// ---------------------------------------------------------------------------
// ChannelSession
// ---------------------------------------------------------------------------

ChannelSession::ChannelSession(ChannelProtocol& owner, Protocol* hlp, IpAddr peer,
                               uint16_t channel, RelProtoNum proto, SessionRef lower)
    : Session(owner, hlp),
      chan_(owner),
      peer_(peer),
      channel_(channel),
      proto_(proto),
      lower_(std::move(lower)),
      jitter_(0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(channel) << 32) ^ proto) {}

void ChannelSession::Send(uint16_t flags, uint32_t seq, uint16_t error,
                          const Message& payload) {
  uint8_t raw[ChannelProtocol::kHeaderSize + kDeadlineExtSize];
  // Requests with a deadline carry it on the wire so the server can shed
  // expired work; the extension costs nothing when deadlines are off.
  const bool with_deadline = (flags & kFlagRequest) != 0 && payload.deadline() != 0;
  if (with_deadline) {
    flags |= kFlagDeadline;
  }
  WireWriter w(raw);
  w.PutU16(flags);
  w.PutU16(channel_);
  w.PutU32(proto_);
  w.PutU32(seq);
  w.PutU16(error);
  w.PutU32(kernel().boot_id());
  if (with_deadline) {
    w.PutU64(static_cast<uint64_t>(payload.deadline()));
  }
  Message pkt = payload;
  kernel().ChargeHdrStore(w.pos());
  pkt.PushHeader(std::span(raw, w.pos()));
  (void)lower_->Push(pkt);
}

SimTime ChannelSession::TimeoutFor(const Message& msg) const {
  // Step function: single-fragment messages use the base timeout;
  // multi-fragment messages wait long enough that FRAGMENT cannot still be
  // mid-transfer (paper, Section 3.2).
  ControlArgs args;
  size_t opt = 1024;
  if (lower_->Control(ControlOp::kGetOptPacket, args).ok()) {
    opt = args.u64;
  }
  const size_t frags = msg.length() / (opt + 1) + 1;
  return chan_.base_timeout_ * static_cast<SimTime>(frags);
}

SimTime ChannelSession::AdaptiveRto() const {
  // Jacobson RTO with capped exponential backoff per retry.
  SimTime rto = srtt_ + 4 * rttvar_;
  if (rto < kRtoFloor) {
    rto = kRtoFloor;
  }
  const int shift = pending_->retries < 6 ? pending_->retries : 6;
  rto <<= shift;
  if (rto > kRtoCap) {
    rto = kRtoCap;
  }
  return rto;
}

void ChannelSession::ArmTimer() {
  SimTime rto;
  if (chan_.adaptive_timeout_ && have_rtt_) {
    rto = AdaptiveRto();
    // Deterministic per-channel jitter desynchronizes retry storms across
    // channels without perturbing runs (seeded from the channel identity).
    rto += static_cast<SimTime>(
        jitter_.NextBelow(static_cast<uint64_t>(rto / 8) + 1));
  } else {
    rto = TimeoutFor(pending_->request);
  }
  SimTime delay = rto * (pending_->acked ? 4 : 1);
  if (pending_->deadline != 0) {
    // Never sleep past the deadline: the timer fires exactly at it so the
    // giveup happens the moment the call can no longer succeed.
    const SimTime until = pending_->deadline - kernel().now();
    if (until < delay) {
      delay = until > 0 ? until : 0;
    }
  }
  pending_->timer = kernel().SetTimer(delay, [this]() { OnTimeout(); });
}

void ChannelSession::FailPending(StatusCode code) {
  ++chan_.stats_.call_failures;
  if (TraceSink* ts = kernel().trace_sink()) {
    const TraceOp op = code == StatusCode::kResourceExhausted ? TraceOp::kBudgetExhausted
                                                              : TraceOp::kGiveUp;
    ts->RecordEvent(kernel(), op, chan_.name(), kernel().now(), 0, &pending_->request, this,
                    static_cast<uint64_t>(pending_->retries), code);
  }
  Message req = std::move(pending_->request);
  kernel().CancelTimer(pending_->timer);
  pending_.reset();
  // A sweep may have parked this session while the call pinned it; relink
  // so the now-idle channel ages out normally.
  NoteActivity();
  if (hlp() != nullptr) {
    hlp()->SessionCallError(*this, ErrStatus(code), &req);
  }
}

void ChannelSession::OnTimeout() {
  if (!pending_.has_value()) {
    return;
  }
  ++chan_.stats_.timeouts;
  if (pending_->deadline != 0 && kernel().now() >= pending_->deadline) {
    // The deadline passed: retransmitting buys nothing the caller can use.
    ++chan_.stats_.deadline_giveups;
    FailPending(StatusCode::kDeadlineExceeded);
    return;
  }
  if (pending_->retries >= chan_.retry_limit_) {
    FailPending(StatusCode::kTimeout);
    return;
  }
  if (chan_.retry_ratio_ppm_ > 0) {
    // Retry budget: a retransmission costs one whole token. An empty bucket
    // means the stack as a whole is retrying more than its configured ratio
    // -- give this call up instead of joining the storm.
    if (chan_.retry_tokens_ppm_ < kTokenPpm) {
      ++chan_.stats_.budget_giveups;
      FailPending(StatusCode::kResourceExhausted);
      return;
    }
    chan_.retry_tokens_ppm_ -= kTokenPpm;
  }
  ++pending_->retries;
  pending_->retransmitted = true;
  ++chan_.stats_.retransmissions;
  if (TraceSink* ts = kernel().trace_sink()) {
    // Each attempt boundary is a point event on the saved request message, so
    // a causal stitcher can tie every wire transmission of the same id to an
    // attempt and classify what the retry was recovering from.
    ts->RecordEvent(kernel(), TraceOp::kRetransmit, chan_.name(), kernel().now(), 0,
                    &pending_->request, this,
                    static_cast<uint64_t>(pending_->retries + 1));
  }
  // Retransmissions ask the server to confirm liveness explicitly.
  Send(kFlagRequest | kFlagPleaseAck, pending_->seq, 0, pending_->request);
  ArmTimer();
}

Status ChannelSession::DoPush(Message& msg) {
  if (in_progress_) {
    // A request from the peer is executing here: this push is its reply.
    // Executions complete in start order, so the oldest queued seq names the
    // request this reply answers. If that is no longer the current request,
    // the client abandoned it (deadline giveup) and reused the channel -- the
    // reply answers dead work and must be dropped, NOT sent as the current
    // request's answer (the payload would belong to the wrong call).
    uint32_t exec_seq = recv_seq_;
    if (!exec_seqs_.empty()) {
      exec_seq = exec_seqs_.front();
      exec_seqs_.erase(exec_seqs_.begin());
    }
    in_progress_ = !exec_seqs_.empty();
    if (exec_seq != recv_seq_) {
      ++chan_.stats_.abandoned_replies;
      return OkStatus();
    }
    // A nonzero wire_error (admission fast-reject, shed) rides the header's
    // error field so the client fails the call without parsing a payload.
    saved_reply_ = msg;  // kept until implicitly acked by the next request
    Send(kFlagReply, recv_seq_, msg.wire_error(), msg);
    return OkStatus();
  }
  // Client call.
  if (pending_.has_value()) {
    return ErrStatus(StatusCode::kError);  // one outstanding call per channel
  }
  if (msg.deadline() != 0 && kernel().now() >= msg.deadline()) {
    // Already expired (e.g. queued behind a full channel pool): don't waste
    // a wire exchange on an answer nobody will wait for.
    ++chan_.stats_.deadline_giveups;
    if (TraceSink* ts = kernel().trace_sink()) {
      ts->RecordEvent(kernel(), TraceOp::kGiveUp, chan_.name(), kernel().now(), 0, &msg, this, 0,
                      StatusCode::kDeadlineExceeded);
    }
    return ErrStatus(StatusCode::kDeadlineExceeded);
  }
  const uint32_t seq = ++send_seq_;
  ++chan_.stats_.calls_sent;
  chan_.RefillBudget();
  pending_.emplace();
  pending_->request = msg;
  pending_->seq = seq;
  pending_->sent_at = kernel().now();
  pending_->deadline = msg.deadline();
  Send(kFlagRequest, seq, 0, msg);
  ArmTimer();
  kernel().ChargeSemOp();  // the calling shepherd blocks awaiting the reply
  return OkStatus();
}

Status ChannelSession::HandleRequest(uint32_t seq, uint32_t boot_id, Message& payload,
                                     Session* lls) {
  if (lls != nullptr) {
    lower_ = lls->Ref();  // replies return the way the request came
  }
  if (client_boot_id_ != 0 && boot_id != client_boot_id_) {
    // The client rebooted: its sequence space restarted.
    ++chan_.stats_.boot_resets;
    recv_seq_ = 0;
    in_progress_ = false;
    exec_seqs_.clear();
    saved_reply_.reset();
  }
  client_boot_id_ = boot_id;

  if (seq == recv_seq_) {
    // Duplicate of the current request: at-most-once -- never re-execute.
    // A saved error reply (shed/reject) resends with its original error code.
    ++chan_.stats_.duplicates_suppressed;
    if (saved_reply_.has_value()) {
      ++chan_.stats_.replies_resent;
      Send(kFlagReply, recv_seq_, saved_reply_->wire_error(), *saved_reply_);
    } else if (in_progress_) {
      ++chan_.stats_.explicit_acks_sent;
      Send(kFlagAck, recv_seq_, 0, Message());
    }
    return OkStatus();
  }
  if (seq < recv_seq_) {
    ++chan_.stats_.stale_drops;
    return OkStatus();
  }
  // New request: implicitly acknowledges the previous reply.
  saved_reply_.reset();
  recv_seq_ = seq;
  if (payload.deadline() != 0 && kernel().now() >= payload.deadline()) {
    // Deadline-aware shedding: the request expired in flight or in queue.
    // Answer with a cheap error reply instead of charging execution -- the
    // client has already given up (or is about to), so running the handler
    // would only push the server deeper into overload.
    ++chan_.stats_.deadline_sheds;
    if (TraceSink* ts = kernel().trace_sink()) {
      ts->RecordEvent(kernel(), TraceOp::kShed, chan_.name(), kernel().now(), 0, &payload, this,
                      0, StatusCode::kDeadlineExceeded);
    }
    Message err_reply;
    err_reply.set_wire_error(static_cast<uint8_t>(StatusCode::kDeadlineExceeded));
    saved_reply_ = err_reply;
    Send(kFlagReply, recv_seq_, err_reply.wire_error(), err_reply);
    return OkStatus();
  }
  in_progress_ = true;
  exec_seqs_.push_back(recv_seq_);
  ++chan_.stats_.requests_executed;
  // Dispatch to the server process.
  kernel().ChargeSemOp();
  kernel().ChargeProcessSwitch();
  return DeliverUp(payload);
}

Status ChannelSession::HandleReply(uint16_t flags, uint32_t seq, uint16_t error,
                                   Message& payload) {
  if (!pending_.has_value() || seq != pending_->seq) {
    ++chan_.stats_.stale_drops;
    return OkStatus();  // late reply to an abandoned/completed call
  }
  if (flags & kFlagAck) {
    // Explicit ack: the server is alive and still working; wait longer.
    ++chan_.stats_.explicit_acks_received;
    pending_->acked = true;
    kernel().CancelTimer(pending_->timer);
    ArmTimer();
    return OkStatus();
  }
  if (error != 0) {
    // Error reply: the server refused or shed the request (BUSY from
    // admission control, DEADLINE_EXCEEDED from shedding). Complete the call
    // with that status -- much cheaper for everyone than burning the full
    // retransmission ladder. Error replies return immediately regardless of
    // service time, so they never feed the RTT estimator.
    kernel().CancelTimer(pending_->timer);
    Message req = std::move(pending_->request);
    pending_.reset();
    ++chan_.stats_.reject_replies;
    ++chan_.stats_.call_failures;
    NoteActivity();
    // Wake the blocked calling shepherd to observe the failure.
    kernel().ChargeSemOp();
    kernel().ChargeProcessSwitch();
    if (hlp() != nullptr) {
      hlp()->SessionCallError(*this, ErrStatus(static_cast<StatusCode>(error)), &req);
    }
    return OkStatus();
  }
  // RTT estimation, Karn's rule: retransmitted calls are ambiguous (the reply
  // may answer either copy), so only clean exchanges update the estimator.
  if (!pending_->retransmitted) {
    const SimTime sample = kernel().now() - pending_->sent_at;
    if (!have_rtt_) {
      srtt_ = sample;
      rttvar_ = sample / 2;
      have_rtt_ = true;
    } else {
      const SimTime err = sample - srtt_;
      srtt_ += err / 8;
      const SimTime abs_err = err < 0 ? -err : err;
      rttvar_ += (abs_err - rttvar_) / 4;
    }
  }
  kernel().CancelTimer(pending_->timer);
  pending_.reset();
  ++chan_.stats_.replies_received;
  // Wake the blocked calling shepherd.
  kernel().ChargeSemOp();
  kernel().ChargeProcessSwitch();
  return DeliverUp(payload);
}

Status ChannelSession::HandlePacket(uint16_t flags, uint32_t seq, uint16_t error,
                                    uint32_t boot_id, Message& payload, Session* lls) {
  NoteActivity();  // packet arrival bypasses Session::Pop
  if (flags & kFlagRequest) {
    return HandleRequest(seq, boot_id, payload, lls);
  }
  if (flags & (kFlagReply | kFlagAck)) {
    if (peer_boot_id_ != 0 && boot_id != peer_boot_id_ && pending_.has_value()) {
      // The server rebooted while we were waiting: the call's fate is
      // unknown. Surface the failure (Sprite's crash detection would).
      ++chan_.stats_.boot_resets;
    }
    peer_boot_id_ = boot_id;
    return HandleReply(flags, seq, error, payload);
  }
  return ErrStatus(StatusCode::kInvalidArgument);
}

Status ChannelSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status ChannelSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetPeerHost:
      args.ip = peer_;
      return OkStatus();
    case ControlOp::kGetMyHost:
      args.ip = kernel().ip_addr();
      return OkStatus();
    case ControlOp::kGetMyProto:
    case ControlOp::kGetPeerProto:
      args.u64 = proto_;
      return OkStatus();
    case ControlOp::kGetBootId:
      args.u64 = peer_boot_id_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
