// The x-kernel map tool: demultiplexing tables that bind external identifiers
// (header fields) to sessions, with cost accounting built in.
//
// Protocols keep an *active* map (fully-specified keys -> open sessions) and
// a *passive* map (partially-specified keys from open_enable -> the enabled
// high-level protocol). Every Resolve charges map_resolve and every Bind
// charges map_bind, so demux costs are accounted uniformly across protocols.
//
// Like the real map tool this is a hash table: open addressing with linear
// probing over a power-of-two bucket array, keyed through the XkHash/XkEq
// customization points (src/core/hash.h). Erased buckets become tombstones so
// probe chains stay intact; the table rehashes when full + tombstone buckets
// pass a 70% load factor. Demux on the datapath is therefore one probe over
// a contiguous array -- no node allocation, no pointer chasing.

#ifndef XK_SRC_CORE_MAP_H_
#define XK_SRC_CORE_MAP_H_

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "src/core/hash.h"
#include "src/core/kernel.h"
#include "src/core/protocol.h"

namespace xk {

template <typename Key, typename Value = SessionRef,
          typename Hash = XkHash<Key>, typename Eq = XkEq<Key>>
class DemuxMap {
 public:
  explicit DemuxMap(Kernel& kernel) : kernel_(kernel) {}

  // Preferred: a map owned by `owner` counts its datapath hits/misses into
  // the owner's ProtoCounters (host bookkeeping; charged costs unchanged).
  explicit DemuxMap(Protocol& owner)
      : kernel_(owner.kernel()), counters_(&owner.counters()) {}

  // Looks up `key`, charging one map_resolve. Returns a default-constructed
  // Value (null SessionRef) on miss.
  Value Resolve(const Key& key) {
    kernel_.ChargeMapResolve();
    const size_t i = FindIndex(key);
    if (counters_ != nullptr) {
      ++(i == kNpos ? counters_->map_misses : counters_->map_hits);
    }
    return i == kNpos ? Value{} : buckets_[i].value;
  }

  // Lookup without charging (configuration-time bookkeeping, not datapath).
  Value Peek(const Key& key) const {
    const size_t i = FindIndex(key);
    return i == kNpos ? Value{} : buckets_[i].value;
  }

  bool Contains(const Key& key) const { return FindIndex(key) != kNpos; }

  // Installs `key -> value`, charging one map_bind. Overwrites.
  void Bind(const Key& key, Value value) {
    kernel_.ChargeMapBind();
    InsertOrAssign(key, std::move(value), /*overwrite=*/true, nullptr);
  }

  // Single-probe insert-if-absent, replacing the Peek-then-Bind pattern.
  // Installs and charges one map_bind if `key` was unbound (returns true);
  // otherwise charges nothing -- exactly what the probe-then-install pair
  // cost -- and copies the incumbent into *existing when non-null.
  bool TryBind(const Key& key, Value value, Value* existing = nullptr) {
    if (InsertOrAssign(key, std::move(value), /*overwrite=*/false, existing)) {
      kernel_.ChargeMapBind();
      return true;
    }
    return false;
  }

  // Removes `key`, charging one map_unbind so demux teardown (dynamic layer
  // removal, per-call channel release) is accounted like installation.
  void Unbind(const Key& key) {
    kernel_.ChargeMapUnbind();
    const size_t i = FindIndex(key);
    if (i == kNpos) {
      return;
    }
    EraseBucket(i);
  }

  // Removes `key` and returns its value in one probe (default-constructed
  // Value on miss) -- the Peek-then-Unbind teardown pattern. Charges one
  // map_unbind, like Unbind.
  Value Take(const Key& key) {
    kernel_.ChargeMapUnbind();
    const size_t i = FindIndex(key);
    if (i == kNpos) {
      return Value{};
    }
    Value out = std::move(buckets_[i].value);
    EraseBucket(i);
    return out;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // --- introspection (tests and debugging, not part of the map-tool API) ---

  size_t capacity() const { return buckets_.size(); }
  size_t tombstones() const { return tombstones_; }

  // Buckets a lookup of `key` visits (>= 1 on a non-empty table). Counts the
  // terminating bucket too, so a first-probe hit is 1.
  size_t ProbeLength(const Key& key) const {
    if (buckets_.empty()) {
      return 0;
    }
    const size_t mask = buckets_.size() - 1;
    size_t n = 0;
    for (size_t i = ProbeStart(key);; i = (i + 1) & mask) {
      ++n;
      const Bucket& b = buckets_[i];
      if (b.state == kEmpty || (b.state == kFull && Eq{}(b.key, key))) {
        return n;
      }
    }
  }

  // Longest probe chain over every bound key: the worst-case demux cost the
  // table currently offers. Tombstone buildup shows up here first.
  size_t MaxProbeLength() const {
    size_t worst = 0;
    for (const Bucket& b : buckets_) {
      if (b.state == kFull) {
        worst = std::max(worst, ProbeLength(b.key));
      }
    }
    return worst;
  }

  void clear() {
    buckets_.clear();
    size_ = 0;
    tombstones_ = 0;
  }

 private:
  enum BucketState : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  struct Bucket {
    Key key{};
    Value value{};
    uint8_t state = kEmpty;
  };

  static constexpr size_t kNpos = SIZE_MAX;
  static constexpr size_t kMinCapacity = 16;

  void EraseBucket(size_t i) {
    buckets_[i].state = kTombstone;
    buckets_[i].value = Value{};
    --size_;
    ++tombstones_;
    // Amortized compaction: unbind-heavy phases (idle eviction draining a
    // million-session table) never insert, so the insert-side rehash in
    // MaybeGrow can't fire and probe chains would rot behind tombstones.
    // Rehash once a quarter of the table is tombstones; RehashForSize also
    // shrinks, so a drained table gives its memory back.
    if (tombstones_ * 4 >= buckets_.size() && buckets_.size() > kMinCapacity) {
      RehashForSize();
    }
  }

  size_t ProbeStart(const Key& key) const {
    return static_cast<size_t>(Hash{}(key)) & (buckets_.size() - 1);
  }

  // Index of the full bucket holding `key`, or kNpos.
  size_t FindIndex(const Key& key) const {
    if (buckets_.empty()) {
      return kNpos;
    }
    const size_t mask = buckets_.size() - 1;
    for (size_t i = ProbeStart(key);; i = (i + 1) & mask) {
      const Bucket& b = buckets_[i];
      if (b.state == kEmpty) {
        return kNpos;
      }
      if (b.state == kFull && Eq{}(b.key, key)) {
        return i;
      }
    }
  }

  // Inserts `key -> value` (reusing the first tombstone on the probe path).
  // If the key is already bound: overwrites when `overwrite`, else leaves the
  // incumbent and copies it to *existing when non-null. Returns true iff a
  // new binding was installed.
  bool InsertOrAssign(const Key& key, Value value, bool overwrite,
                      Value* existing) {
    MaybeGrow();
    const size_t mask = buckets_.size() - 1;
    size_t first_tombstone = kNpos;
    for (size_t i = ProbeStart(key);; i = (i + 1) & mask) {
      Bucket& b = buckets_[i];
      if (b.state == kFull) {
        if (Eq{}(b.key, key)) {
          if (overwrite) {
            b.value = std::move(value);
          } else if (existing != nullptr) {
            *existing = b.value;
          }
          return false;
        }
        continue;
      }
      if (b.state == kTombstone) {
        if (first_tombstone == kNpos) {
          first_tombstone = i;
        }
        continue;
      }
      // Empty: the key is absent. Land on the earliest reusable bucket.
      Bucket& dst = first_tombstone == kNpos ? b : buckets_[first_tombstone];
      if (dst.state == kTombstone) {
        --tombstones_;
      }
      dst.key = key;
      dst.value = std::move(value);
      dst.state = kFull;
      ++size_;
      return true;
    }
  }

  void MaybeGrow() {
    if (buckets_.empty()) {
      buckets_.resize(kMinCapacity);
      return;
    }
    // Count tombstones toward load so long-lived maps with heavy bind/unbind
    // churn (per-call channel bindings in SELECT) rehash instead of degrading.
    if ((size_ + tombstones_ + 1) * 10 <= buckets_.size() * 7) {
      return;
    }
    RehashForSize();
  }

  // Rebuilds the table at the smallest power-of-two capacity keeping the live
  // load (with one insertion of headroom) at or under 70%, dropping every
  // tombstone. Both grows and shrinks.
  void RehashForSize() {
    size_t new_cap = kMinCapacity;
    while ((size_ + 1) * 10 > new_cap * 7) {
      new_cap *= 2;
    }
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(new_cap, Bucket{});
    size_ = 0;
    tombstones_ = 0;
    for (Bucket& b : old) {
      if (b.state == kFull) {
        InsertOrAssign(b.key, std::move(b.value), /*overwrite=*/false, nullptr);
      }
    }
  }

  Kernel& kernel_;
  ProtoCounters* counters_ = nullptr;  // owner's counters; null for bare-kernel maps
  std::vector<Bucket> buckets_;  // size is 0 or a power of two
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_CORE_MAP_H_
