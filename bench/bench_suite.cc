// The full benchmark suite in one parallel binary.
//
// Enumerates every configuration the per-table binaries measure -- Tables
// I-III, the Section 4.3 dynamic-removal stack, the Section 1 UDP/IP
// cross-kernel comparison, the 1k..16k throughput sweep, and both ablations
// -- and runs them as independent jobs on a host thread pool, one simulated
// Internet per job. Results are written as JSON (BENCH_RESULTS.json).
//
// Parallelism rule: parallel ACROSS instances, deterministic WITHIN an
// instance. Each job builds its own Internet (its own EventQueue, kernels,
// and sessions), shares nothing mutable with other jobs, and therefore
// reports exactly the numbers the serial binaries report -- the jobs even
// call the same helpers in bench_util.h. Only the host-side wall-clock
// fields (wall_ms, events_per_sec, parallel_speedup) vary run to run.

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <regex>
#include <thread>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/trace/causal.h"
#include "bench/session_scale.h"
#include "src/cluster/datacenter.h"

namespace xk {
namespace {

struct Metric {
  std::string name;
  double value = 0;
};

struct JobResult {
  std::string group;
  std::string name;
  std::vector<Metric> metrics;
  uint64_t events_fired = 0;
  double wall_ms = 0;  // host time, measured by the job runner
  Histogram latency_hist;  // per-call round trips ("percentiles" block)
  Histogram service_hist;  // server-side service times ("service_percentiles")
  std::string extra_json;  // extra deterministic fields, e.g. "segments": [...]
  // Host-side (wall-clock) metrics: emitted only without --stable, and named
  // so the regression differ skips them (see SkippedKey in bench_diff.h).
  std::vector<Metric> host_metrics;
};

using JobFn = std::function<JobResult()>;

struct Job {
  std::string group;
  std::string name;
  JobFn run;
};

// --- job builders --------------------------------------------------------------

JobResult FromConfig(const ConfigResult& r) {
  JobResult out;
  out.metrics = {{"latency_ms", r.latency_ms},
                 {"throughput_kbs", r.throughput_kbs},
                 {"incr_ms_per_kb", r.incr_ms_per_kb},
                 {"client_cpu_ms", r.client_cpu_ms},
                 {"server_cpu_ms", r.server_cpu_ms}};
  out.events_fired = r.events_fired;
  out.latency_hist = r.latency_rtt;
  out.service_hist = r.service;
  return out;
}

Job MeasureJob(std::string group, std::string name, RpcBench::Builder builder,
               HostEnv env = HostEnv::kXKernel) {
  JobFn fn = [name, builder = std::move(builder), env] {
    return FromConfig(RpcBench::Measure(name, builder, env));
  };
  return Job{std::move(group), std::move(name), std::move(fn)};
}

Job PartialLatencyJob(std::string name, int layers) {
  JobFn fn = [layers] {
    PartialLatency p = MeasurePartialLatency(layers);
    JobResult out;
    out.metrics = {{"latency_ms", p.ms}};
    out.events_fired = p.events_fired;
    out.latency_hist = p.rtt;
    return out;
  };
  return Job{"table3_layer_costs", std::move(name), std::move(fn)};
}

Job UdpJob(std::string name, HostEnv env) {
  JobFn fn = [env] {
    UdpEcho u = MeasureUdpEcho(env);
    JobResult out;
    out.metrics = {{"latency_ms", u.ms}};
    out.events_fired = u.events_fired;
    out.latency_hist = u.rtt;
    return out;
  };
  return Job{"udp_crosskernel", std::move(name), std::move(fn)};
}

Job SweepJob(std::string name, RpcBench::Builder builder, HostEnv env = HostEnv::kXKernel) {
  JobFn fn = [builder = std::move(builder), env] {
    JobResult out;
    std::vector<double> per_call;
    for (size_t kb = 1; kb <= 16; ++kb) {
      RpcBench::Instance in = RpcBench::MakeInstance(builder, env);
      ThroughputResult t = RpcWorkload::MeasureThroughput(
          *in.net, *in.ch->kernel, *in.sh->kernel, in.MakeCall(), kb * 1024, 8);
      per_call.push_back(ToMsec(t.elapsed) / t.completed);
      out.events_fired += in.net->events_fired();
      out.metrics.push_back({"per_call_ms_" + std::to_string(kb) + "k", per_call.back()});
      out.latency_hist.Merge(t.rtt);
    }
    out.metrics.push_back({"throughput_16k_kbs", 16.0 / (per_call.back() / 1000.0)});
    out.metrics.push_back({"slope_ms_per_kb", (per_call.back() - per_call.front()) / 15.0});
    return out;
  };
  return Job{"throughput_sweep", std::move(name), std::move(fn)};
}

Job HeaderAllocJob(std::string name, HeaderAllocPolicy policy) {
  JobFn fn = [policy] {
    // The policy is thread_local; the runner resets it before each job.
    Message::set_default_alloc_policy(policy);
    JobResult out;
    PartialLatency base = MeasurePartialLatency(0);
    PartialLatency chan = MeasurePartialLatency(2);
    ConfigResult full = RpcBench::Measure(
        "SELECT-CHANNEL-FRAGMENT-VIP", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
    out.metrics = {{"vip_base_ms", base.ms},
                   {"full_stack_ms", full.latency_ms},
                   {"avg_per_layer_ms", (full.latency_ms - base.ms) / 3.0},
                   {"min_per_layer_ms", full.latency_ms - chan.ms}};
    out.events_fired = base.events_fired + chan.events_fired + full.events_fired;
    out.latency_hist = base.rtt;
    out.latency_hist.Merge(chan.rtt);
    out.latency_hist.Merge(full.latency_rtt);
    out.service_hist = full.service;
    return out;
  };
  return Job{"ablation_header_alloc", std::move(name), std::move(fn)};
}

// The many-host workload (16 pairs, 16 segments, one simulation). This is
// the job the --engine-threads flag is aimed at; its simulated metrics are
// identical at every engine width.
constexpr int kManyHostPairs = 32;
constexpr size_t kManyHostBytes = 4096;
constexpr int kManyHostIters = 50;

JobResult ManyHostResult(const ManyPairsBench& b) {
  JobResult out;
  out.metrics = {{"agg_kbytes_per_sec", b.agg_kbytes_per_sec},
                 {"elapsed_sim_ms", b.elapsed_ms},
                 {"completed", static_cast<double>(b.completed)},
                 {"failed", static_cast<double>(b.failed)},
                 {"sum_done_at_ns", static_cast<double>(b.sum_done_at)}};
  out.events_fired = b.events_fired;
  out.latency_hist = b.rtt;
  out.service_hist = b.service;
  // Per-segment link statistics, all integers: byte-stable and, like every
  // simulated metric, engine-invariant.
  std::string& seg_json = out.extra_json;
  // IP forwarding totals over every host: zero here (no routers in the
  // many-pairs topology), but reported so the datacenter jobs' forwarding
  // accounting has an explicit off-path control.
  seg_json += "\"ip\": {\"forwards\": " + std::to_string(b.ip_forwards);
  seg_json += ", \"ttl_drops\": " + std::to_string(b.ip_ttl_drops);
  seg_json += ", \"no_route_drops\": " + std::to_string(b.ip_no_route_drops);
  seg_json += "}, ";
  seg_json += "\"segments\": [";
  for (size_t s = 0; s < b.segments.size(); ++s) {
    const SegmentStat& st = b.segments[s];
    if (s > 0) {
      seg_json += ", ";
    }
    seg_json += "{\"segment\": " + std::to_string(st.segment);
    seg_json += ", \"frames\": " + std::to_string(st.frames);
    seg_json += ", \"bytes\": " + std::to_string(st.bytes);
    seg_json += ", \"busy_ns\": " + std::to_string(st.busy_ns);
    seg_json += ", \"utilization_ppm\": " + std::to_string(st.utilization_ppm);
    seg_json += ", \"queued_frames\": " + std::to_string(st.queued_frames);
    seg_json += ", \"peak_queue_depth\": " + std::to_string(st.peak_queue_depth);
    seg_json += ", \"mean_queue_depth_x1000\": " + std::to_string(st.mean_queue_depth_x1000);
    seg_json += ", \"wait_p50_ns\": " + std::to_string(st.wait_p50_ns);
    seg_json += ", \"wait_p99_ns\": " + std::to_string(st.wait_p99_ns);
    seg_json += ", \"wait_p999_ns\": " + std::to_string(st.wait_p999_ns);
    seg_json += ", \"wait_max_ns\": " + std::to_string(st.wait_max_ns);
    seg_json += ", \"frames_dropped\": " + std::to_string(st.frames_dropped);
    seg_json += "}";
  }
  seg_json += "]";
  return out;
}

Job ManyHostJob() {
  JobFn fn = [] {
    return ManyHostResult(
        MeasureManyPairsBench(kManyHostPairs, kManyHostBytes, kManyHostIters));
  };
  return Job{"manyhost", "L_RPC-VIP-32pairs", std::move(fn)};
}

// The same workload with a 0.5% uniform frame drop on every segment:
// retransmissions stretch the latency tail (p999 >> p50), which is what the
// percentile blocks and the regression gate are for.
Job ManyHostFaultsJob() {
  JobFn fn = [] {
    return ManyHostResult(MeasureManyPairsBench(kManyHostPairs, kManyHostBytes,
                                                kManyHostIters, 0, /*drop_rate=*/0.005));
  };
  return Job{"manyhost", "L_RPC-VIP-32pairs-faults", std::move(fn)};
}

// Trace-overhead microbench: the same many-pairs workload twice back to
// back -- bare, then with a TraceSink capturing and the causal stitcher
// consuming its output -- so the host-time cost of --trace + --flow is a
// measured number. Recording charges zero simulated cost, so every simulated
// metric must be identical across the two passes: trace_mismatch counts the
// fields that differed (always 0) and rides the baseline so any tracing
// Heisenberg effect fails the regression gate. The wall-clock overhead goes
// to host_metrics, which --stable omits and the differ skips.
Job ManyHostTracedJob() {
  JobFn fn = [] {
    constexpr int kTracedPairs = 8;
    constexpr int kTracedIters = 25;
    // The worker may have installed a suite-wide sink (--trace/--flow); park
    // it so the bare pass is genuinely untraced and the traced pass is
    // measured against a sink this job owns.
    TraceSink* outer = TraceSink::thread_default();
    TraceSink::set_thread_default(nullptr);
    const auto t0 = std::chrono::steady_clock::now();
    const ManyPairsBench bare = MeasureManyPairsBench(kTracedPairs, kManyHostBytes, kTracedIters);
    const auto t1 = std::chrono::steady_clock::now();
    TraceSink sink;
    TraceSink::set_thread_default(&sink);
    const ManyPairsBench traced =
        MeasureManyPairsBench(kTracedPairs, kManyHostBytes, kTracedIters);
    const auto t2 = std::chrono::steady_clock::now();
    TraceSink::set_thread_default(outer);
    const std::string jsonl = sink.ToJsonl();
    const tracetool::TraceFile tf = tracetool::Parse(jsonl);
    const causal::FlowAnalysis fa = causal::Stitch(tf);
    const auto t3 = std::chrono::steady_clock::now();
    double mismatch = 0;
    mismatch += bare.completed != traced.completed ? 1 : 0;
    mismatch += bare.failed != traced.failed ? 1 : 0;
    mismatch += bare.sum_done_at != traced.sum_done_at ? 1 : 0;
    mismatch += bare.events_fired != traced.events_fired ? 1 : 0;
    mismatch += bare.rtt.count() != traced.rtt.count() ? 1 : 0;
    mismatch += bare.rtt.sum() != traced.rtt.sum() ? 1 : 0;
    JobResult out;
    out.metrics = {
        {"completed", static_cast<double>(traced.completed)},
        {"failed", static_cast<double>(traced.failed)},
        {"sum_done_at_ns", static_cast<double>(traced.sum_done_at)},
        {"trace_mismatch", mismatch},
        {"trace_span_count", static_cast<double>(tf.spans.size())},
        {"trace_wire_count", static_cast<double>(tf.wires.size())},
        {"trace_event_count", static_cast<double>(tf.events.size())},
        // Zero here -- RpcClient calls carry no oracle ids -- which is the
        // control: only cluster-tier workloads produce call graphs.
        {"flow_calls", static_cast<double>(fa.calls.size())},
    };
    out.events_fired = traced.events_fired;
    out.latency_hist = traced.rtt;
    out.service_hist = traced.service;
    const auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    const double bare_ms = ms(t0, t1);
    out.host_metrics = {
        {"untraced_ms", bare_ms},
        {"traced_ms", ms(t1, t2)},
        {"stitch_ms", ms(t2, t3)},
        {"trace_overhead_pct", bare_ms > 0 ? 100.0 * (ms(t1, t3) - bare_ms) / bare_ms : 0.0},
    };
    return out;
  };
  return Job{"manyhost", "traced", std::move(fn)};
}

// Engine hot-path microbench: pure event churn plus frame-burst delivery,
// no RPC stack in the way (see MeasureHotLoop). The simulated counts gate
// against the baseline; events_per_sec is the host-side engine rate.
Job HotLoopJob() {
  JobFn fn = [] {
    HotLoopBench b = MeasureHotLoop();
    JobResult out;
    out.metrics = {{"timer_pop_count", static_cast<double>(b.timer_pops)},
                   {"burst_frames", static_cast<double>(b.frames_delivered)},
                   {"echo_count", static_cast<double>(b.echoes)},
                   {"elapsed_sim_ms", b.elapsed_sim_ms},
                   {"churn_throughput_keps",
                    b.elapsed_sim_ms > 0
                        ? static_cast<double>(b.events_fired) / b.elapsed_sim_ms
                        : 0}};
    out.host_metrics = {{"events_per_sec", b.events_per_sec}};
    out.events_fired = b.events_fired;
    return out;
  };
  return Job{"hotloop", "churn-burst-8hosts", std::move(fn)};
}

Job ColdWarmJob(std::string name, RpcBench::Builder builder) {
  JobFn fn = [builder = std::move(builder)] {
    ColdWarmResult cw = MeasureColdWarm(builder);
    JobResult out;
    out.metrics = {{"first_call_ms", cw.first_ms},
                   {"steady_state_ms", cw.steady_ms},
                   {"setup_cost_ms", cw.first_ms - cw.steady_ms}};
    out.events_fired = cw.events_fired;
    return out;
  };
  return Job{"ablation_session_cache", std::move(name), std::move(fn)};
}

// A fault campaign measured as availability: the oracle-checked chaos
// workload under a declarative FaultPlan. Every metric is simulated and
// engine-invariant, so chaos jobs are part of the --stable byte-identity
// checks like everything else.
Job ChaosJob(std::string name, FaultPlan plan, ChaosSpec spec, bool adaptive_rto = false) {
  JobFn fn = [plan = std::move(plan), spec, adaptive_rto] {
    ChaosBench b = MeasureChaosCampaign(plan, spec, adaptive_rto);
    JobResult out;
    const double goodput_kbs =
        b.run.elapsed > 0 ? static_cast<double>(b.run.completed) *
                                static_cast<double>(spec.payload_bytes + AmoOracle::kIdBytes) /
                                1024.0 / (ToMsec(b.run.elapsed) / 1000.0)
                          : 0.0;
    out.metrics = {
        {"success_rate_ppm",
         b.run.issued > 0 ? 1e6 * b.run.completed / b.run.issued : 0.0},
        {"completed", static_cast<double>(b.run.completed)},
        {"failed", static_cast<double>(b.run.failed)},
        {"goodput_kbytes_per_sec", goodput_kbs},
        {"elapsed_sim_ms", ToMsec(b.run.elapsed)},
        {"recovery_ms", ToMsec(b.run.recovery_latency)},
        {"retransmissions", static_cast<double>(b.retransmissions)},
        {"timeouts", static_cast<double>(b.timeouts)},
        {"boot_resets", static_cast<double>(b.boot_resets)},
        {"down_drops", static_cast<double>(b.down_drops)},
        {"fault_drops", static_cast<double>(b.fault_drops)},
        {"oracle_executions", static_cast<double>(b.oracle.executions)},
        {"oracle_double_exec", static_cast<double>(b.oracle.double_executions)},
        {"oracle_cross_boot_reexec",
         static_cast<double>(b.oracle.cross_boot_reexecutions)},
        {"oracle_silent", static_cast<double>(b.oracle.silent)},
    };
    out.events_fired = b.events_fired;
    out.latency_hist = b.run.rtt;
    return out;
  };
  return Job{"chaos", std::move(name), std::move(fn)};
}

// A datacenter job: k client segments fanning through the core router into a
// replica pool behind VPOOL, driven open-loop. Everything reported is
// simulated and engine-invariant, so these jobs ride the --stable
// byte-identity checks at every --engine-threads width.
Job DatacenterJob(std::string name, DatacenterSpec spec) {
  JobFn fn = [spec = std::move(spec)] {
    const DatacenterResult r = MeasureDatacenter(spec);
    JobResult out;
    out.metrics = {
        {"issued", static_cast<double>(r.issued)},
        {"completed", static_cast<double>(r.completed)},
        {"failed", static_cast<double>(r.failed)},
        {"success_rate_ppm", static_cast<double>(r.success_ppm)},
        {"offered_cps", r.offered_cps},
        {"goodput_cps", r.goodput_cps},
        {"share_spread_ppm", static_cast<double>(r.share_spread_ppm)},
        {"down_marks", static_cast<double>(r.down_marks)},
        {"readmits", static_cast<double>(r.readmits)},
        {"rerouted_opens", static_cast<double>(r.rerouted_opens)},
        {"all_down_failures", static_cast<double>(r.all_down_failures)},
        {"session_flushes", static_cast<double>(r.session_flushes)},
        {"late_replies", static_cast<double>(r.late_replies)},
        {"sum_done_at_ns", static_cast<double>(r.sum_done_at)},
        {"shed", static_cast<double>(r.shed)},
        {"rejected", static_cast<double>(r.rejected)},
        {"budget_exhausted", static_cast<double>(r.budget_exhausted)},
        {"hedges", static_cast<double>(r.hedges)},
        {"hedge_cancels", static_cast<double>(r.hedge_cancels)},
        {"capped_rejects", static_cast<double>(r.capped_rejects)},
        {"breaker_trips", static_cast<double>(r.breaker_trips)},
        {"oracle_executions", static_cast<double>(r.oracle.executions)},
        {"oracle_double_exec", static_cast<double>(r.oracle.double_executions)},
        {"oracle_cross_boot_reexec",
         static_cast<double>(r.oracle.cross_boot_reexecutions)},
        {"oracle_silent", static_cast<double>(r.oracle.silent)},
        {"oracle_admitted", static_cast<double>(r.oracle.admitted)},
        {"oracle_admitted_success_ppm",
         static_cast<double>(r.oracle.admitted_success_ppm)},
        {"oracle_hedged", static_cast<double>(r.oracle.hedged)},
        {"oracle_hedged_duplicate_executions",
         static_cast<double>(r.oracle.hedged_duplicate_executions)},
    };
    out.events_fired = r.events_fired;
    out.latency_hist = r.rtt;
    std::string& ej = out.extra_json;
    // Per-replica share, from the client-side VPOOL counters.
    ej += "\"replica_calls\": {";
    for (size_t i = 0; i < r.replica_calls.size(); ++i) {
      if (i > 0) {
        ej += ", ";
      }
      ej += "\"r" + std::to_string(i) + "_calls\": " + std::to_string(r.replica_calls[i]);
    }
    ej += "}";
    // Failover timeline, attributed by issue time against the crash window.
    if (spec.faults.HasCrashClauses() || spec.crash_at != 0 || spec.restart_at != 0) {
      static const char* kPhaseNames[3] = {"pre", "outage", "post"};
      ej += ", \"failover_phases\": {";
      for (int p = 0; p < 3; ++p) {
        const DatacenterResult::Phase& ph = r.phases[p];
        if (p > 0) {
          ej += ", ";
        }
        ej += std::string("\"") + kPhaseNames[p] + "\": {";
        ej += "\"issued\": " + std::to_string(ph.issued);
        ej += ", \"completed\": " + std::to_string(ph.completed);
        ej += ", \"failed\": " + std::to_string(ph.failed);
        ej += ", \"success_ppm\": " + std::to_string(ph.success_ppm);
        ej += "}";
      }
      ej += "}";
    }
    // IP forwarding through the core router (satellite view of the multi-hop
    // path: every request and reply crosses it).
    ej += ", \"routers\": [";
    for (size_t i = 0; i < r.routers.size(); ++i) {
      const DatacenterResult::RouterStat& rt = r.routers[i];
      if (i > 0) {
        ej += ", ";
      }
      ej += "{\"name\": \"" + rt.name + "\"";
      ej += ", \"forwards\": " + std::to_string(rt.forwards);
      ej += ", \"ttl_drops\": " + std::to_string(rt.ttl_drops);
      ej += ", \"no_route_drops\": " + std::to_string(rt.no_route_drops);
      ej += "}";
    }
    ej += "], \"segments\": [";
    for (size_t i = 0; i < r.segments.size(); ++i) {
      const DatacenterResult::SegStat& st = r.segments[i];
      if (i > 0) {
        ej += ", ";
      }
      ej += "{\"segment\": " + std::to_string(st.segment);
      ej += ", \"frames\": " + std::to_string(st.frames);
      ej += ", \"bytes\": " + std::to_string(st.bytes);
      ej += ", \"utilization_ppm\": " + std::to_string(st.utilization_ppm);
      ej += ", \"queued_frames\": " + std::to_string(st.queued_frames);
      ej += ", \"peak_queue_depth\": " + std::to_string(st.peak_queue_depth);
      ej += ", \"wait_p99_ns\": " + std::to_string(st.wait_p99_ns);
      ej += ", \"frames_dropped\": " + std::to_string(st.frames_dropped);
      ej += ", \"down_drops\": " + std::to_string(st.down_drops);
      ej += ", \"fault_drops\": " + std::to_string(st.fault_drops);
      ej += "}";
    }
    ej += "]";
    return out;
  };
  return Job{"datacenter", std::move(name), std::move(fn)};
}

// Connection-scale: N live sessions per side on pooled storage, a strided
// echo sample with the population resident, then a timer-driven idle drain.
// All simulated metrics (charged cost, evictions, slab and map geometry) are
// engine-invariant; the wall-clock and RSS observations ride host_metrics so
// --stable byte-identity is preserved.
Job SessionScaleJob(std::string name, SessionScaleSpec spec) {
  JobFn fn = [spec] {
    const SessionScaleBench b = MeasureSessionScale(spec);
    JobResult out;
    out.metrics = {
        {"sessions", static_cast<double>(b.sessions)},
        {"cycles", static_cast<double>(b.cycles)},
        {"completed", static_cast<double>(b.completed)},
        {"sim_cpu_ns_per_call", b.sim_cpu_ns_per_call},
        {"client_evicted", static_cast<double>(b.client_evicted)},
        {"server_evicted", static_cast<double>(b.server_evicted)},
        {"client_live_peak", static_cast<double>(b.client_live_peak)},
        {"client_live_after", static_cast<double>(b.client_live_after)},
        {"server_live_after", static_cast<double>(b.server_live_after)},
        {"client_slots", static_cast<double>(b.client_slots)},
        {"client_high_water", static_cast<double>(b.client_high_water)},
        {"map_capacity_peak", static_cast<double>(b.map_capacity_peak)},
        {"map_tombstones_after", static_cast<double>(b.map_tombstones_after)},
        {"map_max_probe_peak", static_cast<double>(b.map_max_probe_peak)},
        {"elapsed_sim_ms", ToMsec(b.elapsed)},
    };
    out.host_metrics = {
        {"setup_wall_ms", b.setup_wall_ms},
        {"call_wall_ns", b.call_wall_ns},
        {"call_wall_cold_ns", b.call_wall_cold_ns},
        {"rss_mb_after_setup", b.rss_mb_after_setup},
        {"rss_mb_first_cycle", b.rss_mb_first_cycle},
        {"rss_mb_after_drain", b.rss_mb_after_drain},
    };
    out.events_fired = b.events_fired;
    out.latency_hist = b.rtt;
    return out;
  };
  return Job{"session_scale", std::move(name), std::move(fn)};
}

// The shared saturation-sweep topology: 2 client segments x 2 clients each,
// 4 replicas round-robin. Rates chosen from the measured load curve (see
// EXPERIMENTS.md): 100 cps/client is comfortably sub-saturation, 160 is the
// knee, 400 collapses the pool. The 600ms horizon gives each client enough
// calls (~60 at the low rate) that the aligned round-robin remainders -- every
// client starts at replica 0 -- stay under a 10% share spread.
DatacenterSpec SaturationSpec(double rate_cps) {
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 2;
  spec.replicas = 4;
  std::string error;
  const std::string text =
      "poisson:rate=" + std::to_string(static_cast<int>(rate_cps)) + ",horizon=600ms,seed=7";
  if (!ArrivalSpec::Parse(text, &spec.arrivals, &error)) {
    std::abort();  // a literal spec above is malformed; unreachable
  }
  return spec;
}

std::vector<Job> BuildJobs() {
  auto m_eth = [](HostStack& h) { return BuildMRpc(h, Delivery::kEth); };
  auto m_ip = [](HostStack& h) { return BuildMRpc(h, Delivery::kIp); };
  auto m_vip = [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); };
  auto l_vip = [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); };
  auto l_dyn = [](HostStack& h) { return BuildLRpcDynamic(h); };

  std::vector<Job> jobs;
  // Table I: Evaluating VIP.
  jobs.push_back(MeasureJob("table1_vip", "N_RPC", m_eth, HostEnv::kNativeSprite));
  jobs.push_back(MeasureJob("table1_vip", "M_RPC-ETH", m_eth));
  jobs.push_back(MeasureJob("table1_vip", "M_RPC-IP", m_ip));
  jobs.push_back(MeasureJob("table1_vip", "M_RPC-VIP", m_vip));
  // Table II: Monolithic versus Layered RPC (M_RPC-VIP is shared with Table I).
  jobs.push_back(MeasureJob("table2_layering", "L_RPC-VIP", l_vip));
  // Section 4.3: Dynamically Removing Layers.
  jobs.push_back(MeasureJob("sec43_dynamic", "SELECT-CHANNEL-VIPsize", l_dyn));
  // Table III: Cost of Individual RPC Layers.
  jobs.push_back(PartialLatencyJob("VIP", 0));
  jobs.push_back(PartialLatencyJob("FRAGMENT-VIP", 1));
  jobs.push_back(PartialLatencyJob("CHANNEL-FRAGMENT-VIP", 2));
  jobs.push_back(Job{"table3_layer_costs", "FRAGMENT-throughput", [] {
                       FragmentThroughput f = MeasureFragmentThroughput();
                       JobResult out;
                       out.metrics = {{"throughput_kbs", f.kbytes_per_sec}};
                       out.events_fired = f.events_fired;
                       return out;
                     }});
  // Section 1: UDP/IP user-to-user, x-kernel vs SunOS.
  jobs.push_back(UdpJob("UDP-xkernel", HostEnv::kXKernel));
  jobs.push_back(UdpJob("UDP-sunos", HostEnv::kSunOs));
  // Throughput sweep, 1k..16k for every stack.
  jobs.push_back(SweepJob("M_RPC-ETH", m_eth));
  jobs.push_back(SweepJob("M_RPC-IP", m_ip));
  jobs.push_back(SweepJob("M_RPC-VIP", m_vip));
  jobs.push_back(SweepJob("L_RPC-VIP", l_vip));
  jobs.push_back(SweepJob("L_RPC-VIPsize", l_dyn));
  jobs.push_back(SweepJob("N_RPC", m_eth, HostEnv::kNativeSprite));
  // Ablations.
  jobs.push_back(HeaderAllocJob("pointer-adjust", HeaderAllocPolicy::kPointerAdjust));
  jobs.push_back(HeaderAllocJob("alloc-per-header", HeaderAllocPolicy::kPerLayerAlloc));
  jobs.push_back(ColdWarmJob("M_RPC-VIP", m_vip));
  jobs.push_back(ColdWarmJob("L_RPC-VIP", l_vip));
  jobs.push_back(ColdWarmJob("SELECT-CHANNEL-VIPsize", l_dyn));
  // The many-host parallel-engine workload, clean and with link faults.
  jobs.push_back(ManyHostJob());
  jobs.push_back(ManyHostFaultsJob());
  jobs.push_back(ManyHostTracedJob());
  // The engine hot-path microbench (event churn + frame bursts).
  jobs.push_back(HotLoopJob());
  // Chaos campaigns: availability under declared fault plans, verified by the
  // at-most-once oracle. The server crash lands mid-workload; the 400ms
  // outage exceeds CHANNEL's 5x50ms retry budget, so the call spanning it
  // surfaces a failure instead of riding it out.
  {
    ChaosSpec crash_spec;
    crash_spec.calls = 250;
    crash_spec.gap = Msec(2);
    crash_spec.crash_at = Msec(300);
    FaultPlan crash_plan;
    crash_plan.Crash("server", Msec(300), Msec(700));
    jobs.push_back(ChaosJob("server-crash", crash_plan, crash_spec));
    jobs.push_back(ChaosJob("server-crash-adaptive-rto", crash_plan, crash_spec,
                            /*adaptive_rto=*/true));

    ChaosSpec part_spec;
    part_spec.calls = 200;
    part_spec.gap = Msec(2);
    FaultPlan part_plan;
    part_plan.Partition(0, Msec(200), Msec(450));
    jobs.push_back(ChaosJob("partition-heal", part_plan, part_spec));

    ChaosSpec loss_spec;
    loss_spec.calls = 200;
    loss_spec.gap = Msec(2);
    FaultPlan loss_plan;
    loss_plan.seed = 9;
    loss_plan.GilbertElliott(0, 0, 0, /*p_enter=*/0.02, /*p_exit=*/0.25,
                             /*loss_good=*/0.001, /*loss_bad=*/0.7);
    jobs.push_back(ChaosJob("bursty-loss", loss_plan, loss_spec));
  }
  // Datacenter cluster workloads: replica pools behind VPOOL, open-loop
  // arrivals, all traffic through the core router. The saturation sweep
  // brackets the pool's knee; the chaos variant crashes a replica mid-run
  // and reports the failover timeline.
  {
    jobs.push_back(DatacenterJob("sat-low", SaturationSpec(100)));
    jobs.push_back(DatacenterJob("sat-knee", SaturationSpec(160)));
    jobs.push_back(DatacenterJob("sat-overload", SaturationSpec(400)));

    // Bursty on-off arrivals: 280 cps during the on phase (past the knee),
    // idle during the off phase. The mean load (140 cps) is comfortably
    // sub-saturation, yet the on-phase queueing stretches p99 to ~2x what a
    // Poisson process at the same mean produces -- the open-loop burst story.
    DatacenterSpec bursty = SaturationSpec(100);
    std::string error;
    if (!ArrivalSpec::Parse(
            "onoff:rate=280,off_rate=0,on=25ms,off=25ms,horizon=600ms,seed=7",
            &bursty.arrivals, &error)) {
      std::abort();  // literal spec; unreachable
    }
    jobs.push_back(DatacenterJob("bursty-onoff", std::move(bursty)));

    // Replica crash and restart, verified by the at-most-once oracle; the
    // restart gap exceeds CHANNEL's retry budget so in-flight calls fail over
    // rather than ride it out. Mirrors ReplicaCrashFailoverRecoversAfterRestart.
    DatacenterSpec crash;
    crash.client_segments = 2;
    crash.clients_per_segment = 1;
    crash.replicas = 3;
    crash.readmit_after = Msec(120);
    if (!ArrivalSpec::Parse("poisson:rate=100,horizon=900ms,seed=17", &crash.arrivals,
                            &error)) {
      std::abort();  // literal spec; unreachable
    }
    crash.faults.Crash("s0", Msec(80), Msec(500));
    jobs.push_back(DatacenterJob("replica-crash-failover", std::move(crash)));

    // The same 400 cps/client overload that collapses sat-overload, with the
    // overload-control layer on: per-call deadlines propagated in the CHANNEL
    // header, a client retry budget, server admission control, and per-replica
    // concurrency caps at the VPOOL. Calls the pool cannot serve in time are
    // turned away cheaply (BUSY / DEADLINE_EXCEEDED) instead of queueing into
    // collapse, so goodput holds near the knee and admitted calls still
    // succeed -- graceful degradation instead of congestion collapse.
    DatacenterSpec controlled = SaturationSpec(400);
    controlled.deadline = Msec(30);
    controlled.retry_ratio_ppm = 100000;  // 0.1 retries per call
    controlled.retry_burst = 5;
    controlled.concurrency_cap = 1;
    controlled.max_inflight = 0;  // echo replicas serve inline; backlog governs
    controlled.max_backlog = Msec(5);
    jobs.push_back(DatacenterJob("sat-overload-controlled", std::move(controlled)));

    // Replica crash with hedged requests: after the client's own p99 (seeded
    // with a 15ms base delay), a second attempt goes to a different replica.
    // Calls whose primary pick died complete on the hedge instead of waiting
    // out CHANNEL's full retransmission ladder; the oracle separates the
    // resulting benign hedged_duplicate_executions from true double
    // executions, so the run still proves at-most-once per attempt path.
    DatacenterSpec hedged;
    hedged.client_segments = 2;
    hedged.clients_per_segment = 1;
    hedged.replicas = 3;
    hedged.readmit_after = Msec(120);
    if (!ArrivalSpec::Parse("poisson:rate=100,horizon=900ms,seed=17", &hedged.arrivals,
                            &error)) {
      std::abort();  // literal spec; unreachable
    }
    hedged.faults.Crash("s0", Msec(80), Msec(500));
    hedged.hedge_delay = Msec(15);
    jobs.push_back(DatacenterJob("hedged-crash-failover", std::move(hedged)));
  }
  // Connection scale: pooled session storage under growing populations, plus
  // a churn soak whose slab capacity (and RSS) must plateau across cycles.
  // 10^6 sessions run the same harness via --session-scale=1000000 (too heavy
  // for the default suite, which check.sh replays under ASan).
  {
    SessionScaleSpec n1e3;
    n1e3.sessions = 1000;
    jobs.push_back(SessionScaleJob("n1e3", n1e3));
    SessionScaleSpec n1e4;
    n1e4.sessions = 10000;
    jobs.push_back(SessionScaleJob("n1e4", n1e4));
    SessionScaleSpec n1e5;
    n1e5.sessions = 100000;
    jobs.push_back(SessionScaleJob("n1e5", n1e5));
    SessionScaleSpec soak;
    soak.sessions = 20000;
    soak.calls = 64;
    soak.cycles = 3;
    jobs.push_back(SessionScaleJob("soak", soak));
  }
  return jobs;
}

// --- JSON emission -------------------------------------------------------------

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

void AppendJsonNumber(std::string& out, double v, const char* fmt = "%.10g") {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

// Numbers from the opt-in --engine-speedup phase, emitted into the JSON only
// when the phase ran, so plain runs stay byte-identical across engine widths.
// The diag fields (epoch counts, commit-queue depth, lookahead bounds) are
// deterministic and survive --stable; wall-clock fields (serial/parallel ms,
// barrier wait share) vary run to run and are skipped under --stable so the
// determinism diff in scripts/check.sh keeps working.
struct EngineSpeedup {
  int threads = 0;  // 0 = phase did not run
  double serial_ms = 0;
  double parallel_ms = 0;
  bool diag_valid = false;
  ParallelEngine::Diag diag;
};

std::string ToJson(const std::vector<Job>& jobs, const std::vector<JobResult>& results,
                   unsigned threads, double wall_ms, const EngineSpeedup& engine,
                   bool stable) {
  double serial_ms = 0;
  uint64_t events_total = 0;
  for (const JobResult& r : results) {
    serial_ms += r.wall_ms;
    events_total += r.events_fired;
  }
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"suite\": \"xkernel-rpc-bench\",\n";
  out += "  \"jobs\": " + std::to_string(jobs.size());
  // --stable: only simulated (deterministic) quantities -- no wall clock, no
  // thread counts -- so two stable files from any machine or engine width can
  // be compared with cmp(1).
  if (!stable) {
    out += ",\n  \"threads\": " + std::to_string(threads);
    out += ",\n  \"wall_ms\": ";
    AppendJsonNumber(out, wall_ms, "%.1f");
    out += ",\n  \"serial_estimate_ms\": ";
    AppendJsonNumber(out, serial_ms, "%.1f");
    out += ",\n  \"parallel_speedup\": ";
    AppendJsonNumber(out, wall_ms > 0 ? serial_ms / wall_ms : 0, "%.2f");
  }
  out += ",\n  \"events_fired_total\": " + std::to_string(events_total);
  if (!stable) {
    out += ",\n  \"events_per_sec\": ";
    AppendJsonNumber(out,
                     wall_ms > 0 ? static_cast<double>(events_total) / (wall_ms / 1000.0) : 0,
                     "%.0f");
  }
  if (engine.threads > 0) {
    out += ",\n  \"engine_threads\": " + std::to_string(engine.threads);
    if (!stable) {
      out += ",\n  \"engine_serial_ms\": ";
      AppendJsonNumber(out, engine.serial_ms, "%.1f");
      out += ",\n  \"engine_parallel_ms\": ";
      AppendJsonNumber(out, engine.parallel_ms, "%.1f");
      out += ",\n  \"engine_speedup\": ";
      AppendJsonNumber(out, engine.parallel_ms > 0 ? engine.serial_ms / engine.parallel_ms : 0,
                       "%.2f");
    }
    if (engine.diag_valid) {
      // Engine internals from the parallel leg of the phase. Everything here
      // is a deterministic function of the workload and thread count, so it
      // stays under --stable; only the wall-clock barrier/run split is
      // host-dependent and gated like the other timing fields.
      const ParallelEngine::Diag& d = engine.diag;
      out += ",\n  \"engine_epochs\": " + std::to_string(d.epochs);
      out += ",\n  \"engine_events_in_epochs\": " + std::to_string(d.fired);
      const double epochs = static_cast<double>(d.epochs);
      out += ",\n  \"engine_mean_active_lps\": ";
      AppendJsonNumber(out, epochs > 0 ? static_cast<double>(d.active_lp_sum) / epochs : 0,
                       "%.2f");
      out += ",\n  \"engine_epoch_mean_ns\": ";
      AppendJsonNumber(out, epochs > 0 ? static_cast<double>(d.span_sum) / epochs : 0, "%.0f");
      out += ",\n  \"engine_epoch_max_ns\": " + std::to_string(d.span_max);
      out += ",\n  \"engine_commit_nodes\": " + std::to_string(d.commit_nodes);
      out += ",\n  \"engine_commit_queue_peak\": " + std::to_string(d.commit_peak);
      out += ",\n  \"engine_lookahead_min_ns\": " + std::to_string(d.lookahead_min);
      out += ",\n  \"engine_lookahead_max_ns\": " + std::to_string(d.lookahead_max);
      if (!stable) {
        out += ",\n  \"engine_barrier_wait_ms\": ";
        AppendJsonNumber(out, d.barrier_wait_ms, "%.1f");
        out += ",\n  \"engine_barrier_wait_share\": ";
        AppendJsonNumber(out,
                         d.run_wall_ms > 0 ? d.barrier_wait_ms / d.run_wall_ms : 0, "%.3f");
      }
    }
  }
  out += ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    out += "    {\"group\": ";
    AppendJsonString(out, r.group);
    out += ", \"name\": ";
    AppendJsonString(out, r.name);
    if (!stable) {
      out += ", \"wall_ms\": ";
      AppendJsonNumber(out, r.wall_ms, "%.1f");
      for (const Metric& m : r.host_metrics) {
        out += ", ";
        AppendJsonString(out, m.name);
        out += ": ";
        AppendJsonNumber(out, m.value);
      }
    }
    out += ", \"events_fired\": " + std::to_string(r.events_fired);
    out += ", \"metrics\": {";
    for (size_t m = 0; m < r.metrics.size(); ++m) {
      if (m > 0) {
        out += ", ";
      }
      AppendJsonString(out, r.metrics[m].name);
      out += ": ";
      AppendJsonNumber(out, r.metrics[m].value);
    }
    out += "}";
    if (r.latency_hist.count() > 0) {
      out += ", ";
      AppendPercentilesMsJson(out, r.latency_hist, "percentiles");
    }
    if (r.service_hist.count() > 0) {
      out += ", ";
      AppendPercentilesMsJson(out, r.service_hist, "service_percentiles");
    }
    if (!r.extra_json.empty()) {
      out += ", " + r.extra_json;
    }
    out += "}";
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

// --- the pool ------------------------------------------------------------------

// "group.name" with anything outside [A-Za-z0-9._-] replaced, so every job
// maps to a distinct, shell-safe file in the --trace= / --pcap= directories.
std::string JobFileStem(const Job& job) {
  std::string s = job.group + "." + job.name;
  for (char& c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' && c != '_') {
      c = '_';
    }
  }
  return s;
}

// Flow/folded artifacts are plain strings built off-thread; write-all-or-log.
bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

// Options lives in bench/bench_flags.h so ParseBenchArgs is unit-testable.

std::vector<Job> SelectJobs(const Options& opt, std::string* fault_error,
                            std::string* arrivals_error) {
  std::vector<Job> jobs = BuildJobs();
  if (!opt.faults.empty()) {
    // --faults=SPEC runs the user's own campaign as chaos.custom. The first
    // crash clause (if any) anchors the recovery-latency attribution.
    FaultPlan plan;
    if (!FaultPlan::Parse(opt.faults, &plan, fault_error)) {
      return {};
    }
    ChaosSpec spec;
    spec.calls = 200;
    spec.gap = Msec(2);
    for (const FaultClause& c : plan.clauses) {
      if (c.kind == FaultClause::Kind::kCrash) {
        spec.crash_at = c.at;
        break;
      }
    }
    jobs.push_back(ChaosJob("custom", std::move(plan), spec));
  }
  if (!opt.arrivals.empty()) {
    // --arrivals=SPEC runs the user's own arrival process against the
    // standard saturation topology as datacenter.custom.
    DatacenterSpec spec = SaturationSpec(100);
    if (!ArrivalSpec::Parse(opt.arrivals, &spec.arrivals, arrivals_error)) {
      return {};
    }
    jobs.push_back(DatacenterJob("custom", std::move(spec)));
  }
  if (opt.session_scale > 0) {
    // --session-scale=N runs the connection-scale harness at any population
    // (e.g. 1000000 for the full curve in EXPERIMENTS.md).
    SessionScaleSpec spec;
    spec.sessions = static_cast<size_t>(opt.session_scale);
    jobs.push_back(SessionScaleJob("n" + std::to_string(opt.session_scale), spec));
  }
  if (opt.filter.empty()) {
    return jobs;
  }
  const std::regex re(opt.filter);
  std::vector<Job> kept;
  for (Job& job : jobs) {
    if (std::regex_search(job.group + "." + job.name, re)) {
      kept.push_back(std::move(job));
    }
  }
  return kept;
}

int Run(const Options& opt) {
  const unsigned threads = opt.threads;
  std::vector<Job> jobs;
  std::string fault_error;
  std::string arrivals_error;
  try {
    jobs = SelectJobs(opt, &fault_error, &arrivals_error);
  } catch (const std::regex_error& e) {
    std::fprintf(stderr, "bench_suite: bad --filter regex: %s\n", e.what());
    return 2;
  }
  if (!fault_error.empty()) {
    std::fprintf(stderr, "bench_suite: bad --faults spec: %s\n", fault_error.c_str());
    return 2;
  }
  if (!arrivals_error.empty()) {
    std::fprintf(stderr, "bench_suite: bad --arrivals spec: %s\n", arrivals_error.c_str());
    return 2;
  }
  if (opt.list) {
    for (const Job& job : jobs) {
      std::printf("%s.%s\n", job.group.c_str(), job.name.c_str());
    }
    return 0;
  }
  const std::string& out_path = opt.out_path;
  const std::string& trace_dir = opt.trace_dir;
  const std::string& pcap_dir = opt.pcap_dir;
  const std::string& stats_dir = opt.stats_dir;
  const std::string& flow_dir = opt.flow_dir;
  std::vector<JobResult> results(jobs.size());
  std::atomic<size_t> next{0};

  const auto suite_start = std::chrono::steady_clock::now();
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= jobs.size()) {
        return;
      }
      // Reset per-thread simulation state a previous job on this pool thread
      // may have left behind (the header-alloc ablation switches the policy),
      // and apply the requested engine width. Both are thread_local, so every
      // pool thread has to set them -- they do not inherit from main.
      Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);
      set_default_engine_threads(opt.engine_threads);
      // One observer pair per job: each job's Internet picks up the
      // thread-default observers at construction, so traces never mix jobs.
      std::unique_ptr<TraceSink> sink;
      std::unique_ptr<PacketCapture> capture;
      std::unique_ptr<StatSampler> sampler;
      // --flow= needs the same records --trace= records, so either flag
      // brings the sink up; --flow alone just skips writing the raw trace.
      if (!trace_dir.empty() || !flow_dir.empty()) {
        sink = std::make_unique<TraceSink>();
        TraceSink::set_thread_default(sink.get());
      }
      if (!pcap_dir.empty()) {
        capture = std::make_unique<PacketCapture>();
        PacketCapture::set_thread_default(capture.get());
      }
      if (!stats_dir.empty()) {
        sampler = std::make_unique<StatSampler>();
        StatSampler::set_thread_default(sampler.get());
      }
      const auto start = std::chrono::steady_clock::now();
      JobResult r = jobs[i].run();
      const auto end = std::chrono::steady_clock::now();
      TraceSink::set_thread_default(nullptr);
      PacketCapture::set_thread_default(nullptr);
      StatSampler::set_thread_default(nullptr);
      if (sink != nullptr && !trace_dir.empty()) {
        (void)sink->WriteFile(trace_dir + "/" + JobFileStem(jobs[i]) + ".trace.jsonl");
      }
      if (sink != nullptr && !flow_dir.empty()) {
        // Stitch the per-call causal graphs observer-side and write both flow
        // artifacts; both are deterministic functions of the (deterministic)
        // trace, so they join the byte-identity gates in scripts/check.sh.
        const causal::FlowAnalysis fa = causal::Stitch(tracetool::Parse(sink->ToJsonl()));
        WriteTextFile(flow_dir + "/" + JobFileStem(jobs[i]) + ".flow.jsonl", causal::ToFlowJsonl(fa));
        WriteTextFile(flow_dir + "/" + JobFileStem(jobs[i]) + ".folded.txt", causal::ToFolded(fa));
      }
      if (capture != nullptr) {
        (void)capture->WriteFile(pcap_dir + "/" + JobFileStem(jobs[i]) + ".pcap.jsonl");
      }
      if (sampler != nullptr) {
        (void)sampler->WriteFile(stats_dir + "/" + JobFileStem(jobs[i]) + ".stats.jsonl");
      }
      r.group = jobs[i].group;
      r.name = jobs[i].name;
      r.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
      results[i] = std::move(r);
    }
  };
  std::vector<std::thread> pool;
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  worker();  // the main thread pulls jobs too
  for (std::thread& t : pool) {
    t.join();
  }
  set_default_engine_threads(1);
  const auto suite_end = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(suite_end - suite_start).count();

  // Opt-in wall-clock speedup phase: run the many-host workload serially and
  // at --engine-speedup width on the main thread, time both, and insist the
  // simulated results are identical. This is the engine's acceptance gate.
  EngineSpeedup engine;
  if (opt.speedup_threads > 1) {
    const auto t0 = std::chrono::steady_clock::now();
    const ManyPairsBench serial =
        MeasureManyPairsBench(kManyHostPairs, kManyHostBytes, kManyHostIters, 1);
    const auto t1 = std::chrono::steady_clock::now();
    const ManyPairsBench par = MeasureManyPairsBench(kManyHostPairs, kManyHostBytes,
                                                     kManyHostIters, opt.speedup_threads);
    const auto t2 = std::chrono::steady_clock::now();
    engine.threads = opt.speedup_threads;
    engine.serial_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    engine.parallel_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    engine.diag_valid = par.engine_diag_valid;
    engine.diag = par.engine_diag;
    if (serial.agg_kbytes_per_sec != par.agg_kbytes_per_sec ||
        serial.completed != par.completed || serial.failed != par.failed ||
        serial.sum_done_at != par.sum_done_at || serial.events_fired != par.events_fired) {
      std::fprintf(stderr,
                   "bench_suite: engine determinism check FAILED: serial "
                   "(%.10g kb/s, %d ok, %d fail, sum %lld, %llu events) vs "
                   "%d threads (%.10g kb/s, %d ok, %d fail, sum %lld, %llu events)\n",
                   serial.agg_kbytes_per_sec, serial.completed, serial.failed,
                   static_cast<long long>(serial.sum_done_at),
                   static_cast<unsigned long long>(serial.events_fired), opt.speedup_threads,
                   par.agg_kbytes_per_sec, par.completed, par.failed,
                   static_cast<long long>(par.sum_done_at),
                   static_cast<unsigned long long>(par.events_fired));
      return 1;
    }
    std::printf("bench_suite: engine speedup %.2fx at %d threads "
                "(serial %.0f ms, parallel %.0f ms), results identical\n",
                engine.parallel_ms > 0 ? engine.serial_ms / engine.parallel_ms : 0.0,
                engine.threads, engine.serial_ms, engine.parallel_ms);
  }

  const std::string json = ToJson(jobs, results, threads, wall_ms, engine, opt.stable);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_suite: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  double serial_ms = 0;
  for (const JobResult& r : results) {
    serial_ms += r.wall_ms;
  }
  std::printf("bench_suite: %zu jobs on %u threads in %.0f ms "
              "(serial estimate %.0f ms, speedup %.2fx) -> %s\n",
              jobs.size(), threads, wall_ms, serial_ms,
              wall_ms > 0 ? serial_ms / wall_ms : 0.0, out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::Options opt;
  opt.threads = std::max(1u, std::thread::hardware_concurrency());
  std::string flag_error;
  if (!xk::ParseBenchArgs(argc, argv, &opt, &flag_error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], flag_error.c_str());
    std::fprintf(stderr,
                 "usage: %s [--threads=N] [--out=FILE] [--trace=DIR] [--pcap=DIR]\n"
                 "          [--stats=DIR] [--flow=DIR] [--list] [--filter=REGEX] [--stable]\n"
                 "          [--engine-threads=N] [--engine-speedup[=N]]\n"
                 "          [--session-scale=N] (adds a session_scale.nN job at N sessions)\n"
                 "          [--faults=PLAN]   (e.g. crash:host=server,at=300ms,restart=700ms;\n"
                 "                             drop:seg=0,from=0ms,until=200ms,rate=0.05)\n"
                 "          [--arrivals=SPEC] (e.g. poisson:rate=200,horizon=200ms,seed=7 or\n"
                 "                             onoff:rate=400,off_rate=0,on=25ms,off=25ms,\n"
                 "                             horizon=200ms -- runs datacenter.custom)\n",
                 argv[0]);
    return 2;
  }
  std::error_code ec;
  if (!opt.trace_dir.empty()) {
    std::filesystem::create_directories(opt.trace_dir, ec);
  }
  if (!opt.pcap_dir.empty()) {
    std::filesystem::create_directories(opt.pcap_dir, ec);
  }
  if (!opt.stats_dir.empty()) {
    std::filesystem::create_directories(opt.stats_dir, ec);
  }
  if (!opt.flow_dir.empty()) {
    std::filesystem::create_directories(opt.flow_dir, ec);
  }
  return xk::Run(opt);
}
