file(REMOVE_RECURSE
  "libxk_psync.a"
)
