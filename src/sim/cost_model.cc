#include "src/sim/cost_model.h"

namespace xk {

CostModel CostModel::XKernel() { return CostModel{}; }

CostModel CostModel::NativeSprite() {
  // The Sprite kernel implements the same RPC algorithm, but in a "less
  // structured environment" (paper, Section 4.1): buffer handling allocates
  // per layer, process switches are heavier, and each layer crossing pays
  // extra bookkeeping. Calibrated against N_RPC = 2.6 ms / ~700 KB/s.
  CostModel m;
  m.layer_cross_extra = Usec(22);
  m.buffer_alloc = Usec(46);
  m.process_switch = Usec(235);
  m.hdr_store_per_byte = UsecF(0.5);
  m.hdr_load_per_byte = UsecF(0.45);
  m.dev_copy_per_byte = UsecF(0.75);
  m.map_resolve = Usec(18);
  m.map_bind = Usec(24);
  return m;
}

CostModel CostModel::SunOs() {
  // SunOS 4.0 sockets (4.3BSD): mbuf allocation on every layer, softnet
  // queueing with extra process switches, and expensive user/kernel
  // crossings. Calibrated against the 5.36 ms user-to-user UDP round trip.
  CostModel m;
  m.layer_cross_extra = Usec(70);
  m.buffer_alloc = Usec(108);
  m.process_switch = Usec(370);
  m.user_kernel_cross = Usec(330);
  m.copy_per_byte = UsecF(0.9);
  m.dev_copy_per_byte = UsecF(0.9);
  m.map_resolve = Usec(30);
  m.map_bind = Usec(40);
  m.hdr_store_fixed = Usec(16);
  m.hdr_load_fixed = Usec(14);
  return m;
}

CostModel CostModel::For(HostEnv env) {
  switch (env) {
    case HostEnv::kXKernel:
      return XKernel();
    case HostEnv::kNativeSprite:
      return NativeSprite();
    case HostEnv::kSunOs:
      return SunOs();
  }
  return XKernel();
}

}  // namespace xk
