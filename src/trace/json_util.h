// Small JSON-emission helpers shared by the trace/pcap/counters writers.
// Emission only -- the reader side lives in src/tools/trace_reader.h.

#ifndef XK_SRC_TRACE_JSON_UTIL_H_
#define XK_SRC_TRACE_JSON_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace xk {

inline void JsonAppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline void JsonAppendField(std::string& out, std::string_view key, int64_t value,
                            bool first = false) {
  if (!first) {
    out += ',';
  }
  JsonAppendEscaped(out, key);
  out += ':';
  out += std::to_string(value);
}

inline void JsonAppendField(std::string& out, std::string_view key, uint64_t value,
                            bool first = false) {
  if (!first) {
    out += ',';
  }
  JsonAppendEscaped(out, key);
  out += ':';
  out += std::to_string(value);
}

inline void JsonAppendField(std::string& out, std::string_view key, std::string_view value,
                            bool first = false) {
  if (!first) {
    out += ',';
  }
  JsonAppendEscaped(out, key);
  out += ':';
  JsonAppendEscaped(out, value);
}

}  // namespace xk

#endif  // XK_SRC_TRACE_JSON_UTIL_H_
