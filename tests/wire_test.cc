// Tests for the bounded big-endian wire codec.

#include "src/core/wire.h"

#include <gtest/gtest.h>

namespace xk {
namespace {

TEST(WireTest, WriteReadRoundTrip) {
  uint8_t buf[32] = {};
  WireWriter w(buf);
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutIpAddr(IpAddr(192, 168, 1, 7));
  w.PutEthAddr(EthAddr::FromIndex(5));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.pos(), 1u + 2 + 4 + 4 + 6);

  WireReader r(std::span<const uint8_t>(buf, w.pos()));
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0x1234);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetIpAddr(), IpAddr(192, 168, 1, 7));
  EXPECT_EQ(r.GetEthAddr(), EthAddr::FromIndex(5));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);  // the reader span was sized to w.pos()
}

TEST(WireTest, BigEndianLayout) {
  uint8_t buf[4];
  WireWriter w(buf);
  w.PutU32(0x01020304);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(WireTest, WriterOverflowIsSticky) {
  uint8_t buf[3];
  WireWriter w(buf);
  w.PutU16(1);
  EXPECT_TRUE(w.ok());
  w.PutU16(2);  // overflows
  EXPECT_FALSE(w.ok());
  w.PutU8(3);  // would fit, but the writer already failed at pos 2
  EXPECT_FALSE(w.ok());
}

TEST(WireTest, ReaderUnderflowIsStickyAndZeroFills) {
  uint8_t buf[3] = {1, 2, 3};
  WireReader r(buf);
  EXPECT_EQ(r.GetU16(), 0x0102);
  EXPECT_EQ(r.GetU32(), 0u);  // underflow: zero
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, SkipAndZeros) {
  uint8_t buf[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  WireWriter w(buf);
  w.PutZeros(4);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(buf[3], 0);
  EXPECT_EQ(buf[4], 9);

  WireReader r(buf);
  r.Skip(6);
  EXPECT_EQ(r.GetU16(), 0x0909);
  EXPECT_TRUE(r.ok());
  r.Skip(1);
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, IpAddrHelpers) {
  IpAddr a(10, 0, 1, 17);
  EXPECT_EQ(a.ToString(), "10.0.1.17");
  EXPECT_TRUE(a.SameSubnet(IpAddr(10, 0, 1, 200)));
  EXPECT_FALSE(a.SameSubnet(IpAddr(10, 0, 2, 17)));
  EXPECT_TRUE(a.SameSubnet(IpAddr(10, 0, 2, 17), 16));
  EXPECT_TRUE(a.SameSubnet(IpAddr(99, 99, 99, 99), 0));
  EXPECT_FALSE(a.SameSubnet(IpAddr(10, 0, 1, 16), 32));
}

TEST(WireTest, EthAddrHelpers) {
  EXPECT_TRUE(EthAddr::Broadcast().IsBroadcast());
  EXPECT_FALSE(EthAddr::FromIndex(3).IsBroadcast());
  EXPECT_EQ(EthAddr::FromIndex(3).ToString(), "08:00:20:00:00:03");
  EXPECT_NE(EthAddr::FromIndex(1), EthAddr::FromIndex(2));
}

}  // namespace
}  // namespace xk
