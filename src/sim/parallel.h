// Conservative parallel discrete-event engine (Chandy/Misra-style lookahead,
// as surveyed in Fujimoto's "Parallel Discrete Event Simulation").
//
// An Internet built with --engine-threads=N > 1 gives every host its own
// EventQueue (one logical process per kernel) and runs them on a team of
// persistent worker threads in epochs. Lookahead is per LP pair: LP i's
// epoch window ends at min over all LPs j of (vt_j + D(j,i)), where D is
// the shortest-path distance through the segment graph with edge weights of
// (minimum frame transmit time + propagation delay) -- the soonest anything
// j does can take effect on i, possibly relayed through idle hosts -- and
// vt_j is j's virtual-time lower bound (earliest committed event or
// unreplayed capture). D(i,i) is the cheapest round trip, so a host with an
// idle peer may run ahead of its own commit point by exactly one echo
// delay. Hosts in different connected components never constrain each
// other, so decoupled regions of the topology advance independently instead
// of marching in lockstep with the globally slowest host. Within its window
// each LP drains its own queue with no locks; the only cross-LP effects --
// frame deliveries, including duplicates from fault injection -- are
// intercepted at EthernetSegment::Transmit and applied serially at the
// epoch barrier.
//
// Bit-identity with the serial engine is by construction, not by luck. Every
// schedule is registered in a canonical min-heap ordered by (time, canonical
// sequence), where canonical sequence numbers are assigned in exactly the
// order the serial engine's single queue would have assigned them: setup
// schedules at call time, run-time schedules during a serial *replay* of the
// fired-event metadata at each barrier. The replay consumes the canonical
// prefix below the replay horizon H = min over LPs of their window end;
// captures above H persist across barriers and replay once H catches up.
// The replay walks events in canonical order and applies each event's
// emission list (trace records, schedules, transmits) in execution order, so
// segment state (bus arbitration, fault RNG draws, statistics), wire/pcap
// records, merged trace streams, and the heap insertion order of future
// events all reproduce the serial engine exactly, at any thread count.
//
// Threading (WorkerTeam): workers are persistent across epochs with static
// LP affinity (LP index mod team size), and epochs join on a central
// sense-reversing barrier -- each participant flips its local sense and the
// last arriver releases the rest by flipping the shared sense, so
// back-to-back short epochs synchronize on one cache line instead of a
// futex round trip per epoch.
//
// Degenerate lookahead (<= 0, e.g. a WireModel with zero transmit time and
// zero propagation) falls back to running one event at a time in canonical
// order -- serial speed, but identical results and no deadlock.

#ifndef XK_SRC_SIM_PARALLEL_H_
#define XK_SRC_SIM_PARALLEL_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"
#include "src/sim/event_queue.h"
#include "src/sim/link.h"
#include "src/trace/trace.h"

namespace xk {

class Kernel;
class WorkerTeam;

// Thread-default engine width, picked up by Internet at construction
// (mirrors TraceSink::thread_default()). 1 = the serial engine.
int default_engine_threads();
void set_default_engine_threads(int threads);

class ParallelEngine : public TransmitSink, public FrameDeliverer {
 public:
  explicit ParallelEngine(int threads);
  ~ParallelEngine() override;

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  // --- topology registration (called by Internet while building) -------------
  // Creates the next logical process and returns its event queue.
  EventQueue& NewLpQueue();
  // Associates `kernel` (constructed on a queue from NewLpQueue) with its LP.
  void BindKernel(Kernel& kernel);
  // Takes over `segment`'s transmits; deliveries are routed to receiver LPs.
  void AdoptSegment(EthernetSegment& segment);
  // The Internet's own queue: advanced to global time at quiescence so
  // setup-phase tasks between runs see the same clock the serial engine has.
  void set_control_queue(EventQueue* queue) { control_ = queue; }
  // The merged (master) trace sink; shards are (re)created per master.
  void set_trace_master(TraceSink* master) { master_trace_ = master; }

  // Runs all logical processes to quiescence. Returns events fired.
  size_t Run();

  // Events fired across all LPs over the engine's lifetime.
  uint64_t fired_total() const;

  int threads() const { return threads_; }

  // Engine diagnostics, accumulated across every Run() on this engine. All
  // sim-time and count fields are deterministic -- they depend only on the
  // topology and workload, not on thread count or host speed; the two *_ms
  // fields are wall-clock and vary run to run.
  struct Diag {
    uint64_t epochs = 0;         // epoch barriers executed
    uint64_t fired = 0;          // events fired inside epoch windows
    uint64_t active_lp_sum = 0;  // sum over epochs of LPs with runnable work
    SimTime span_sum = 0;        // sum of replay-horizon advances (sim time)
    SimTime span_max = 0;        // largest single horizon advance
    uint64_t commit_nodes = 0;   // canonical-order nodes consumed at barriers
    uint64_t commit_peak = 0;    // deepest the canonical commit queue ever got
    SimTime lookahead_min = 0;   // tightest per-segment-pair lookahead bound
    SimTime lookahead_max = 0;   // loosest finite per-pair bound (0 if none)
    double barrier_wait_ms = 0;  // main thread's time at the join barrier
    double run_wall_ms = 0;      // wall time inside RunEpochs/fallback
  };
  const Diag& diag() const { return diag_; }

  // TransmitSink: buffers an in-epoch transmit on the issuing LP's emission
  // list (setup-phase transmits are applied immediately, in call order).
  void OnTransmit(EthernetSegment& segment, int sender_id, std::shared_ptr<EthFrame> frame,
                  SimTime ready_at) override;

  // FrameDeliverer: inserts a delivery into the receiving host's queue.
  void Deliver(EthernetSegment& segment, SimTime at, FrameSink* sink, int receiver_id,
               std::shared_ptr<const EthFrame> frame) override;

 private:
  struct Lp;
  struct FiredEvent;

  // A scheduled event in canonical (serial) order: `seq` values are assigned
  // in exactly the order the serial engine's single queue would have.
  struct CanonNode {
    SimTime at;
    uint64_t seq;
    uint32_t lp;
    uint32_t slot;
    uint32_t gen;
  };
  struct CanonAfter {
    bool operator()(const CanonNode& a, const CanonNode& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void RegisterCanon(uint32_t lp, SimTime at, uint32_t slot, uint32_t gen);
  SimTime ComputeLookahead() const;
  void BuildAdjacency();
  void BeginRun();
  void EndRun();
  size_t RunEpochs();
  size_t RunSerialFallback();
  void ReplayBarrier(SimTime end);
  void ApplyFired(Lp& lp, const FiredEvent& fe);

  static thread_local Lp* current_lp_;

  const int threads_;
  std::vector<std::unique_ptr<Lp>> lps_;
  std::unordered_map<const Kernel*, Lp*> kernel_lp_;
  std::vector<EthernetSegment*> segments_;
  EventQueue* control_ = nullptr;
  TraceSink* master_trace_ = nullptr;
  TraceSink* observers_bound_ = nullptr;  // master the shards were built for

  std::priority_queue<CanonNode, std::vector<CanonNode>, CanonAfter> canon_;
  uint64_t next_canon_seq_ = 0;
  SimTime global_now_ = 0;     // max fired event time across all LPs
  SimTime barrier_floor_ = 0;  // lookahead check: deliveries must land >= this

  std::unique_ptr<WorkerTeam> team_;
  std::vector<Lp*> active_;          // LPs with events inside their window
  std::vector<size_t> epoch_fired_;  // per-active fire counts (no atomics)

  // Per-LP neighbor list: (neighbor LP index, lookahead) for every LP pair
  // that shares at least one segment, with the pair's tightest bound.
  // Rebuilt at BeginRun so segments added between runs are picked up.
  std::vector<std::vector<std::pair<uint32_t, SimTime>>> nbrs_;
  std::vector<SimTime> vt_;   // per-LP virtual-time lower bound, per epoch
  std::vector<SimTime> win_;  // per-LP epoch window end, per epoch

  Diag diag_;
};

}  // namespace xk

#endif  // XK_SRC_SIM_PARALLEL_H_
