# Empty compiler generated dependencies file for bench_table3_layer_costs.
# This may be replaced when dependencies are built.
