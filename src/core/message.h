// The x-kernel message tool.
//
// A Message is a byte sequence that flows up and down a protocol stack. The
// two defining operations are PushHeader (prepend bytes) and PopHeader
// (consume bytes from the front) -- "we think of the message as a stack,
// where the two operations push headers onto and pop headers off of the
// stack" (paper, Section 2).
//
// The representation embodies the optimization the paper's Discussion section
// credits for the 0.11 ms/layer floor: a single pre-allocated header arena is
// shared by all layers, and pushing a header just adjusts a pointer downward
// into that arena. The earlier x-kernel scheme -- allocating a fresh buffer
// for every header, at 0.50 ms/layer -- is preserved as
// HeaderAllocPolicy::kPerLayerAlloc so the ablation benchmark can measure the
// difference.
//
// Payload bytes live in immutable, reference-counted chunks, so fragmentation
// (Slice) and reassembly (Append) never copy payload data, and a protocol
// that "saves a copy of the fragments in the local state" (FRAGMENT) shares
// the underlying bytes with the in-flight message. This mirrors the paper's
// footnote: multiple protocol layers may hold references to pieces of the
// same message.

#ifndef XK_SRC_CORE_MESSAGE_H_
#define XK_SRC_CORE_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/types.h"

namespace xk {

// How PushHeader obtains space for a new header.
enum class HeaderAllocPolicy : uint8_t {
  // Pre-allocated arena, pointer adjustment per header (current x-kernel
  // scheme; 0.11 ms/layer on a Sun 3/75).
  kPointerAdjust,
  // A fresh buffer per header (the original x-kernel scheme; 0.50 ms/layer).
  kPerLayerAlloc,
};

class Message {
 public:
  // Bytes reserved for the header arena. Large enough for the deepest stack
  // in this repository (SELECT+CHANNEL+FRAGMENT+IP+ETH < 100 bytes).
  static constexpr size_t kHeaderArenaSize = 192;

  // Process-wide default allocation policy; the ablation bench flips this.
  static HeaderAllocPolicy default_alloc_policy();
  static void set_default_alloc_policy(HeaderAllocPolicy policy);

  // An empty message.
  Message();

  // A message with `payload_len` zero bytes of payload.
  explicit Message(size_t payload_len);

  // A message whose payload is a copy of `bytes`.
  static Message FromBytes(std::span<const uint8_t> bytes);

  // Messages are cheap to copy: copies share payload chunks, and the header
  // arena is copied lazily on the next PushHeader if still shared.
  Message(const Message&) = default;
  Message& operator=(const Message&) = default;
  Message(Message&&) = default;
  Message& operator=(Message&&) = default;

  // Total length in bytes (headers currently pushed + payload). O(1).
  size_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  // Prepends `header` to the message.
  void PushHeader(std::span<const uint8_t> header);

  // Copies the first out.size() bytes into `out` and consumes them. Returns
  // false (leaving the message unchanged) if the message is shorter than the
  // requested header.
  bool PopHeader(std::span<uint8_t> out);

  // Like PopHeader but does not consume.
  bool PeekHeader(std::span<uint8_t> out) const;

  // Discards the first n bytes. Returns false if the message is shorter.
  bool Discard(size_t n);

  // Keeps only the first n bytes (used to strip Ethernet minimum-frame
  // padding once an inner length field is known). No-op if already shorter.
  void Truncate(size_t n);

  // A new message referencing bytes [offset, offset+len) of this one.
  // Payload chunks are shared, not copied. Out-of-range requests clamp.
  Message Slice(size_t offset, size_t len) const;

  // Appends the byte sequence of `m` to this message (reassembly join).
  // Chunks are shared with `m`.
  void Append(const Message& m);

  // Copies the whole byte sequence into a flat vector (used by device
  // drivers when handing a frame to the simulated wire).
  std::vector<uint8_t> Flatten() const;

  // Flattens into `out` (resized to length()), reusing its capacity -- the
  // allocation-free form of Flatten for pooled frame buffers.
  void FlattenInto(std::vector<uint8_t>& out) const;

  // Copies min(out.size(), length()) bytes from the front into `out`;
  // returns the number copied. Does not consume.
  size_t CopyOut(std::span<uint8_t> out) const;

  // Byte-wise comparison of contents (for tests).
  bool ContentEquals(const Message& other) const;

  // Trace identity, assigned lazily by a TraceSink the first time the message
  // crosses an instrumented entry point (0 = never traced). Copies and moves
  // keep the id, so one logical message reads as one id up and down a stack.
  uint64_t trace_id() const { return trace_id_; }

  // Absolute sim-clock deadline for the call this message belongs to
  // (0 = none). Host-side metadata copied with the message; CHANNEL
  // serializes it onto the wire when nonzero (kFlagDeadline) so servers can
  // shed already-expired requests.
  SimTime deadline() const { return deadline_; }
  void set_deadline(SimTime d) { deadline_ = d; }

  // Application-level error a reply carries back through the transport's
  // header error field (a StatusCode as uint8; 0 = OK). Lets RpcServer tag a
  // fast-reject (BUSY) or shed (DEADLINE_EXCEEDED) reply without inventing a
  // payload convention; CHANNEL serializes it into its 16-bit error field.
  uint8_t wire_error() const { return wire_error_; }
  void set_wire_error(uint8_t e) { wire_error_ = e; }

 private:
  friend class TraceSink;

  // Immutable shared byte storage.
  struct Block {
    std::vector<uint8_t> bytes;
  };

  // A view [off, off+len) into a Block.
  struct Chunk {
    std::shared_ptr<const Block> block;
    size_t off = 0;
    size_t len = 0;
  };

  // Chunk sequence with the first two elements stored inline. Almost every
  // message on the RPC datapath is one payload chunk plus at most one spilled
  // header chunk, so the common push/pop/slice path never allocates a chunk
  // array; only reassembled bulk transfers (FRAGMENT joining 16 slices)
  // overflow into the heap-backed tail.
  class ChunkVec {
   public:
    static constexpr size_t kInline = 2;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    Chunk& operator[](size_t i) {
      return i < kInline ? inline_[i] : rest_[i - kInline];
    }
    const Chunk& operator[](size_t i) const {
      return i < kInline ? inline_[i] : rest_[i - kInline];
    }
    Chunk& front() { return inline_[0]; }

    void push_back(Chunk c) {
      if (size_ < kInline) {
        inline_[size_] = std::move(c);
      } else {
        rest_.push_back(std::move(c));
      }
      ++size_;
    }

    void push_front(Chunk c) {
      if (size_ >= kInline) {
        rest_.insert(rest_.begin(), std::move(inline_[kInline - 1]));
      }
      const size_t shift = size_ < kInline - 1 ? size_ : kInline - 1;
      for (size_t i = shift; i > 0; --i) {
        inline_[i] = std::move(inline_[i - 1]);
      }
      inline_[0] = std::move(c);
      ++size_;
    }

    void pop_front() {
      const size_t in_inline = size_ < kInline ? size_ : kInline;
      for (size_t i = 0; i + 1 < in_inline; ++i) {
        inline_[i] = std::move(inline_[i + 1]);
      }
      if (size_ > kInline) {
        inline_[kInline - 1] = std::move(rest_.front());
        rest_.erase(rest_.begin());
      } else {
        inline_[in_inline - 1] = Chunk{};  // release the block reference
      }
      --size_;
    }

    // Shrinks to the first n elements (n <= size()).
    void truncate(size_t n) {
      for (size_t i = n; i < size_ && i < kInline; ++i) {
        inline_[i] = Chunk{};
      }
      rest_.resize(n > kInline ? n - kInline : 0);
      size_ = n;
    }

    void clear() { truncate(0); }

   private:
    Chunk inline_[kInline];
    std::vector<Chunk> rest_;
    size_t size_ = 0;
  };

  // Header arena: headers are written at decreasing offsets. `start_` is the
  // offset of the first valid byte for *this* message; `arena_len_` the number
  // of valid arena bytes. The arena tracks its low-water mark so that a
  // message whose start matches it (and that owns the arena exclusively) can
  // extend in place; otherwise PushHeader clones the live region first.
  struct Arena {
    std::vector<uint8_t> buf;
    size_t low = 0;  // lowest offset handed out so far
  };

  void EnsureOwnedArenaFor(size_t more);
  void AppendArenaAsChunkTo(Message& dst, size_t skip, size_t take) const;

  std::shared_ptr<Arena> arena_;  // may be null until first PushHeader
  size_t arena_start_ = 0;        // offset of first valid byte in arena_
  size_t arena_len_ = 0;          // number of valid bytes in arena_

  ChunkVec chunks_;
  size_t length_ = 0;  // arena_len_ + sum(chunk.len)
  // Mutable so a sink can tag a message observed through a const reference.
  mutable uint64_t trace_id_ = 0;
  SimTime deadline_ = 0;    // absolute sim-clock call deadline (0 = none)
  uint8_t wire_error_ = 0;  // StatusCode carried in the transport error field
};

}  // namespace xk

#endif  // XK_SRC_CORE_MESSAGE_H_
