// Bounded big-endian serialization helpers for protocol headers.
//
// Every header in this repository (the paper's appendix structures and the
// substrate protocols' headers) is serialized explicitly with these helpers,
// never by casting structs onto buffers: headers are wire formats, and the
// simulated network carries real byte streams between kernels.

#ifndef XK_SRC_CORE_WIRE_H_
#define XK_SRC_CORE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "src/core/types.h"

namespace xk {

// Writes fixed-width big-endian fields into a caller-provided buffer, tracking
// the cursor and overflow. Check ok() once after the last Put.
class WireWriter {
 public:
  explicit WireWriter(std::span<uint8_t> buf) : buf_(buf) {}

  void PutU8(uint8_t v) { PutBytes(&v, 1); }

  void PutU16(uint16_t v) {
    uint8_t b[2] = {static_cast<uint8_t>(v >> 8), static_cast<uint8_t>(v)};
    PutBytes(b, 2);
  }

  void PutU32(uint32_t v) {
    uint8_t b[4] = {static_cast<uint8_t>(v >> 24), static_cast<uint8_t>(v >> 16),
                    static_cast<uint8_t>(v >> 8), static_cast<uint8_t>(v)};
    PutBytes(b, 4);
  }

  void PutU64(uint64_t v) {
    PutU32(static_cast<uint32_t>(v >> 32));
    PutU32(static_cast<uint32_t>(v));
  }

  void PutIpAddr(IpAddr a) { PutU32(a.value()); }

  void PutEthAddr(const EthAddr& a) { PutBytes(a.bytes().data(), 6); }

  void PutBytes(const uint8_t* data, size_t n) {
    if (pos_ + n > buf_.size()) {
      overflow_ = true;
      return;
    }
    std::memcpy(buf_.data() + pos_, data, n);
    pos_ += n;
  }

  void PutZeros(size_t n) {
    if (pos_ + n > buf_.size()) {
      overflow_ = true;
      return;
    }
    std::memset(buf_.data() + pos_, 0, n);
    pos_ += n;
  }

  size_t pos() const { return pos_; }
  bool ok() const { return !overflow_; }

 private:
  std::span<uint8_t> buf_;
  size_t pos_ = 0;
  bool overflow_ = false;
};

// Reads fixed-width big-endian fields from a buffer. Out-of-bounds reads set
// a sticky error and return zeros, so a single ok() check after parsing a
// header validates the whole parse.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> buf) : buf_(buf) {}

  uint8_t GetU8() {
    uint8_t v = 0;
    GetBytes(&v, 1);
    return v;
  }

  uint16_t GetU16() {
    uint8_t b[2] = {};
    GetBytes(b, 2);
    return static_cast<uint16_t>((uint16_t{b[0]} << 8) | uint16_t{b[1]});
  }

  uint32_t GetU32() {
    uint8_t b[4] = {};
    GetBytes(b, 4);
    return (uint32_t{b[0]} << 24) | (uint32_t{b[1]} << 16) | (uint32_t{b[2]} << 8) | uint32_t{b[3]};
  }

  uint64_t GetU64() {
    const uint64_t hi = GetU32();
    return (hi << 32) | GetU32();
  }

  IpAddr GetIpAddr() { return IpAddr(GetU32()); }

  EthAddr GetEthAddr() {
    std::array<uint8_t, 6> b = {};
    GetBytes(b.data(), 6);
    return EthAddr(b);
  }

  void GetBytes(uint8_t* out, size_t n) {
    if (pos_ + n > buf_.size()) {
      error_ = true;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
  }

  void Skip(size_t n) {
    if (pos_ + n > buf_.size()) {
      error_ = true;
      return;
    }
    pos_ += n;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }
  bool ok() const { return !error_; }

 private:
  std::span<const uint8_t> buf_;
  size_t pos_ = 0;
  bool error_ = false;
};

}  // namespace xk

#endif  // XK_SRC_CORE_WIRE_H_
