// Thread-local object recycling for shared_ptr-managed hot-path objects.
//
// The simulation's steady state churns through three allocation patterns per
// message: a header Arena, one or more payload Blocks, and a shared EthFrame
// per transmission. Each lives behind a shared_ptr, so a plain make_shared
// costs one heap round trip per object -- roughly a third of all mallocs on
// the manyhost benchmark. AcquirePooled<T>() removes both the object and the
// shared_ptr control block from the allocator: retired objects park on a
// thread-local freelist with their internal buffers (vector capacity) intact,
// and control blocks recycle through a fixed-size pooling allocator.
//
// Thread safety: each thread only ever touches its own freelists, so no
// synchronization is needed. An object released on a different thread than
// it was acquired on simply migrates to the releasing thread's pool -- under
// the parallel engine LPs hop between workers across epochs, and this is
// both safe and the behavior that keeps each worker's pool warm.
//
// Reuse contract: a recycled object is handed back exactly as it was
// released (minus nothing -- no clearing). Callers must fully overwrite any
// state they later read; every call site in this repository initializes via
// assign()/resize()+memcpy before reading, so stale bytes are never
// observable and determinism is unaffected.

#ifndef XK_SRC_SIM_OBJECT_POOL_H_
#define XK_SRC_SIM_OBJECT_POOL_H_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace xk {
namespace pool_internal {

// Freelists stay bounded so a burst cannot hoard memory for the whole
// process lifetime; beyond the cap objects fall back to plain delete.
constexpr size_t kPoolCap = 256;

template <typename T>
struct ObjectPool {
  std::vector<T*> free;
  ~ObjectPool() {
    for (T* p : free) {
      delete p;
    }
  }
  static ObjectPool& Get() {
    static thread_local ObjectPool pool;
    return pool;
  }
};

// shared_ptr deleter that parks the object instead of destroying it.
template <typename T>
struct Recycle {
  void operator()(T* p) const {
    auto& pool = ObjectPool<T>::Get();
    if (pool.free.size() < kPoolCap) {
      pool.free.push_back(p);
    } else {
      delete p;
    }
  }
};

template <typename U>
struct RawPool {
  std::vector<void*> free;
  ~RawPool() {
    for (void* p : free) {
      ::operator delete(p);
    }
  }
  static RawPool& Get() {
    static thread_local RawPool pool;
    return pool;
  }
};

// Pooling allocator handed to shared_ptr for its control block. Each
// instantiated control-block type U has uniform size, so recycling raw
// storage per U is exact.
template <typename U>
struct CtlAlloc {
  using value_type = U;
  CtlAlloc() = default;
  template <typename V>
  /*implicit*/ CtlAlloc(const CtlAlloc<V>&) {}

  U* allocate(size_t n) {
    auto& pool = RawPool<U>::Get();
    if (n == 1 && !pool.free.empty()) {
      U* p = static_cast<U*>(pool.free.back());
      pool.free.pop_back();
      return p;
    }
    return static_cast<U*>(::operator new(n * sizeof(U)));
  }
  void deallocate(U* p, size_t n) {
    auto& pool = RawPool<U>::Get();
    if (n == 1 && pool.free.size() < kPoolCap) {
      pool.free.push_back(p);
      return;
    }
    ::operator delete(p);
  }
  template <typename V>
  bool operator==(const CtlAlloc<V>&) const {
    return true;
  }
  template <typename V>
  bool operator!=(const CtlAlloc<V>&) const {
    return false;
  }
};

}  // namespace pool_internal

// A default-constructed T, recycled through the calling thread's pool when
// the last shared_ptr drops. The object arrives in whatever state its
// previous user left it -- overwrite before reading (see header comment).
template <typename T>
std::shared_ptr<T> AcquirePooled() {
  auto& pool = pool_internal::ObjectPool<T>::Get();
  T* obj;
  if (!pool.free.empty()) {
    obj = pool.free.back();
    pool.free.pop_back();
  } else {
    obj = new T();
  }
  return std::shared_ptr<T>(obj, pool_internal::Recycle<T>{}, pool_internal::CtlAlloc<T>{});
}

}  // namespace xk

#endif  // XK_SRC_SIM_OBJECT_POOL_H_
