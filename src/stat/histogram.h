// HDR-style log-linear histogram for simulated durations.
//
// Fixed bucket layout, exact counts, mergeable, and deterministic: two runs
// that record the same values produce bit-identical histograms, so percentile
// blocks can appear in outputs that are diffed byte-for-byte.
//
// Layout: values below kSubBuckets (32) get one bucket each (exact); above
// that, each power-of-two octave is split into 32 linear sub-buckets, so the
// relative quantization error of any reported value is bounded by
// 1/kSubBuckets = 3.125%. Reported quantiles are the inclusive upper edge of
// the covering bucket, clamped to the exact observed [min, max] -- a reported
// pXX is never below the true pXX and overshoots by at most one sub-bucket.
//
// Values are SimTime (int64 nanoseconds); negatives clamp to 0. Recording is
// a few shifts and one array increment -- cheap enough to stay on in every
// benchmark -- and charges zero simulated cost (it never touches a Kernel).

#ifndef XK_SRC_STAT_HISTOGRAM_H_
#define XK_SRC_STAT_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/types.h"

namespace xk {

class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 32 linear steps per octave
  // Octave groups: values < 32 are linear (group 0); groups 1..58 cover
  // [2^5, 2^63). int64 values never reach group 59.
  static constexpr int kNumBuckets = 59 * kSubBuckets;

  // The bucket covering `v` (v < 0 records as 0).
  static int BucketIndex(SimTime v);
  // Inclusive [low, high] range of bucket `b`.
  static SimTime BucketLow(int b);
  static SimTime BucketHigh(int b);

  void Record(SimTime v);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  SimTime min() const { return count_ == 0 ? 0 : min_; }
  SimTime max() const { return max_; }
  SimTime sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Smallest recorded value v such that at least ceil(q * count) recorded
  // values are <= v, reported as the covering bucket's upper edge clamped to
  // the exact [min, max]. q outside [0, 1] is clamped; 0 on an empty
  // histogram.
  SimTime ValueAtQuantile(double q) const;

  SimTime P50() const { return ValueAtQuantile(0.50); }
  SimTime P90() const { return ValueAtQuantile(0.90); }
  SimTime P99() const { return ValueAtQuantile(0.99); }
  SimTime P999() const { return ValueAtQuantile(0.999); }

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  SimTime sum_ = 0;
  SimTime min_ = 0;
  SimTime max_ = 0;
};

// Appends `"key": {"count": N, "p50_ms": ..., "p90_ms": ..., "p99_ms": ...,
// "p999_ms": ..., "max_ms": ..., "mean_ms": ...}` (no surrounding comma) with
// the same %.10g number formatting the bench JSON uses, so percentile blocks
// are byte-stable for deterministic inputs.
void AppendPercentilesMsJson(std::string& out, const Histogram& h, std::string_view key);

}  // namespace xk

#endif  // XK_SRC_STAT_HISTOGRAM_H_
