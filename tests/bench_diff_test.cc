// Tests for the bench regression comparator (src/tools/bench_diff.h): the
// exact code path the xkbench_diff CLI runs on suite-shaped JSON.

#include "src/tools/bench_diff.h"

#include <string>

#include "gtest/gtest.h"

namespace xk::benchdiff {
namespace {

// A miniature BENCH_RESULTS.json with the shapes the comparator must handle:
// group/name-keyed results, nested metrics, percentiles, and segments.
std::string SuiteJson(double latency_ms, double throughput, double util_ppm,
                      bool include_udp = true) {
  std::string out = R"({
  "schema_version": 2,
  "threads": 8,
  "wall_ms": 123,
  "results": [
    {"group": "table3", "name": "L_RPC", "wall_ms": 7,
     "metrics": {"latency_ms": )" + std::to_string(latency_ms) + R"(,
                 "throughput_kbytes_per_sec": )" + std::to_string(throughput) + R"(},
     "percentiles": {"count": 64, "p50_ms": )" + std::to_string(latency_ms) + R"(,
                     "p999_ms": )" + std::to_string(latency_ms * 1.2) + R"(}},
    {"group": "manyhost", "name": "pairs", "wall_ms": 9,
     "metrics": {"completed": 512, "failed": 0},
     "segments": [
       {"segment": 0, "frames": 100, "utilization_ppm": )" + std::to_string(util_ppm) + R"(},
       {"segment": 1, "frames": 100, "utilization_ppm": 5000}
     ]})";
  if (include_udp) {
    out += R"(,
    {"group": "table5", "name": "UDP", "metrics": {"latency_ms": 1.5}})";
  }
  out += "\n  ]\n}\n";
  return out;
}

TEST(BenchDiff, IdenticalFilesPass) {
  const std::string j = SuiteJson(2.0, 400, 9000);
  const Report r = Compare(j, j);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.compared, 5u);
  EXPECT_TRUE(r.regressions.empty());
}

TEST(BenchDiff, LatencyIncreaseIsRegression) {
  const Report r = Compare(SuiteJson(2.0, 400, 9000), SuiteJson(2.2, 400, 9000));
  ASSERT_FALSE(r.regressions.empty());
  bool found = false;
  for (const Finding& f : r.regressions) {
    if (f.path.find("table3.L_RPC") != std::string::npos &&
        f.path.find("latency_ms") != std::string::npos) {
      found = true;
      EXPECT_EQ(f.direction, Direction::kLowerBetter);
      EXPECT_GT(f.rel_err, 0.02);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchDiff, LatencyDecreaseIsImprovement) {
  const Report r = Compare(SuiteJson(2.0, 400, 9000), SuiteJson(1.5, 400, 9000));
  EXPECT_TRUE(r.ok());
}

TEST(BenchDiff, ThroughputDropIsRegressionRiseIsNot) {
  const Report drop = Compare(SuiteJson(2.0, 400, 9000), SuiteJson(2.0, 300, 9000));
  EXPECT_FALSE(drop.regressions.empty());
  EXPECT_EQ(drop.regressions[0].direction, Direction::kHigherBetter);
  const Report rise = Compare(SuiteJson(2.0, 400, 9000), SuiteJson(2.0, 500, 9000));
  EXPECT_TRUE(rise.ok());
}

TEST(BenchDiff, UtilizationDriftIsTwoSided) {
  const Report up = Compare(SuiteJson(2.0, 400, 9000), SuiteJson(2.0, 400, 12000));
  EXPECT_FALSE(up.regressions.empty());
  const Report down = Compare(SuiteJson(2.0, 400, 9000), SuiteJson(2.0, 400, 6000));
  EXPECT_FALSE(down.regressions.empty());
  EXPECT_EQ(down.regressions[0].direction, Direction::kTwoSided);
}

// Datacenter-job metric directions: goodput is higher-better (a drop
// regresses, a rise does not), while offered load and per-replica call
// counts are workload/routing facts -- drift either way is flagged.
std::string DatacenterJson(double goodput, double offered, int r0_calls) {
  return R"({
  "schema_version": 2,
  "results": [
    {"group": "datacenter", "name": "sat-low",
     "metrics": {"goodput_cps": )" + std::to_string(goodput) + R"(,
                 "offered_cps": )" + std::to_string(offered) + R"(},
     "replica_calls": {"r0_calls": )" + std::to_string(r0_calls) + R"(, "r1_calls": 60}}
  ]
}
)";
}

TEST(BenchDiff, GoodputDropIsRegressionRiseIsNot) {
  const Report drop = Compare(DatacenterJson(400, 500, 60), DatacenterJson(300, 500, 60));
  ASSERT_FALSE(drop.regressions.empty());
  EXPECT_EQ(drop.regressions[0].direction, Direction::kHigherBetter);
  const Report rise = Compare(DatacenterJson(400, 500, 60), DatacenterJson(500, 500, 60));
  EXPECT_TRUE(rise.ok());
}

TEST(BenchDiff, OfferedLoadDriftIsTwoSided) {
  const Report down = Compare(DatacenterJson(400, 500, 60), DatacenterJson(400, 400, 60));
  ASSERT_FALSE(down.regressions.empty());
  EXPECT_EQ(down.regressions[0].direction, Direction::kTwoSided);
  const Report up = Compare(DatacenterJson(400, 500, 60), DatacenterJson(400, 600, 60));
  EXPECT_FALSE(up.regressions.empty());
}

TEST(BenchDiff, ReplicaCallShareDriftIsTwoSided) {
  const Report down = Compare(DatacenterJson(400, 500, 60), DatacenterJson(400, 500, 40));
  ASSERT_FALSE(down.regressions.empty());
  EXPECT_EQ(down.regressions[0].direction, Direction::kTwoSided);
}

// Overload-control verdict counters are policy outcomes, not performance:
// drift in either direction must be flagged. One leaf name per new metric
// the overload jobs emit.
TEST(BenchDiff, OverloadVerdictLeavesAreTwoSided) {
  for (const char* leaf :
       {"shed", "rejected", "budget_exhausted", "hedges", "hedge_cancels", "capped_rejects",
        "breaker_trips", "admitted", "busy_rejects", "deadline_sheds", "deadline_giveups",
        "hedged_duplicate_executions"}) {
    EXPECT_EQ(DirectionFor(std::string("datacenter.sat-overload-controlled.metrics.") + leaf),
              Direction::kTwoSided)
        << leaf;
  }
}

TEST(BenchDiff, AdmittedSuccessIsHigherBetter) {
  EXPECT_EQ(DirectionFor("datacenter.sat-overload-controlled.oracle.admitted_success_ppm"),
            Direction::kHigherBetter);
}

std::string OverloadJson(int shed, int hedges) {
  return R"({
  "schema_version": 2,
  "results": [
    {"group": "datacenter", "name": "sat-overload-controlled",
     "metrics": {"shed": )" + std::to_string(shed) + R"(,
                 "hedges": )" + std::to_string(hedges) + R"(}}
  ]
}
)";
}

TEST(BenchDiff, ShedAndHedgeDriftFlaggedBothWays) {
  const Report fewer = Compare(OverloadJson(100, 40), OverloadJson(50, 40));
  ASSERT_FALSE(fewer.regressions.empty());
  EXPECT_EQ(fewer.regressions[0].direction, Direction::kTwoSided);
  const Report more = Compare(OverloadJson(100, 40), OverloadJson(100, 80));
  ASSERT_FALSE(more.regressions.empty());
  EXPECT_EQ(more.regressions[0].direction, Direction::kTwoSided);
}

TEST(BenchDiff, SmallDriftWithinThresholdPasses) {
  const Report r = Compare(SuiteJson(2.0, 400, 9000), SuiteJson(2.02, 396, 9050));
  EXPECT_TRUE(r.ok()) << (r.regressions.empty() ? "" : r.regressions[0].path);
}

TEST(BenchDiff, MissingJobIsRegressionUnlessAllowed) {
  const std::string base = SuiteJson(2.0, 400, 9000, /*include_udp=*/true);
  const std::string cur = SuiteJson(2.0, 400, 9000, /*include_udp=*/false);
  const Report strict = Compare(base, cur);
  ASSERT_FALSE(strict.regressions.empty());
  EXPECT_TRUE(strict.regressions[0].missing);
  EXPECT_NE(strict.regressions[0].path.find("table5.UDP"), std::string::npos);

  Options opt;
  opt.allow_missing = true;
  EXPECT_TRUE(Compare(base, cur, opt).ok());
}

TEST(BenchDiff, ThresholdOverrideFirstMatchWins) {
  const std::string base =
      R"({"results": [{"group": "g", "name": "j", "metrics": {"latency_ms": 2.0}}]})";
  const std::string cur =
      R"({"results": [{"group": "g", "name": "j", "metrics": {"latency_ms": 2.2}}]})";
  Options opt;
  opt.thresholds.emplace_back("latency_ms", 0.50);  // 50%: exempts the 10% rise
  EXPECT_TRUE(Compare(base, cur, opt).ok());
  // A tighter first match beats a looser later one.
  Options tight;
  tight.thresholds.emplace_back("g\\.j\\.metrics\\.latency_ms", 0.01);
  tight.thresholds.emplace_back("latency_ms", 0.50);
  EXPECT_FALSE(Compare(base, cur, tight).regressions.empty());
}

TEST(BenchDiff, HostDependentFieldsAreSkipped) {
  std::string a = SuiteJson(2.0, 400, 9000);
  std::string b = a;
  // Only wall-clock and thread-count fields differ: still a clean pass.
  size_t pos = b.find("\"threads\": 8");
  ASSERT_NE(pos, std::string::npos);
  b.replace(pos, 12, "\"threads\": 1");
  pos = b.find("\"wall_ms\": 123");
  ASSERT_NE(pos, std::string::npos);
  b.replace(pos, 14, "\"wall_ms\": 999");
  EXPECT_TRUE(Compare(a, b).ok());
}

TEST(BenchDiff, JobReorderDoesNotCompareAcrossJobs) {
  // Results keyed by group.name: swapping array order changes nothing.
  const std::string base = SuiteJson(2.0, 400, 9000);
  const std::string reordered = R"({
  "results": [
    {"group": "table5", "name": "UDP", "metrics": {"latency_ms": 1.5}},
    {"group": "manyhost", "name": "pairs",
     "metrics": {"completed": 512, "failed": 0},
     "segments": [
       {"segment": 0, "frames": 100, "utilization_ppm": 9000.000000},
       {"segment": 1, "frames": 100, "utilization_ppm": 5000}
     ]},
    {"group": "table3", "name": "L_RPC",
     "metrics": {"latency_ms": 2.000000, "throughput_kbytes_per_sec": 400.000000},
     "percentiles": {"count": 64, "p50_ms": 2.000000, "p999_ms": 2.400000}}
  ]
})";
  EXPECT_TRUE(Compare(base, reordered).ok());
}

TEST(BenchDiff, ParseErrorReported) {
  const Report r = Compare("{not json", SuiteJson(2.0, 400, 9000));
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.compared, 0u);
  const Report r2 = Compare("{\"a\": \"strings only\"}", "{\"a\": \"strings only\"}");
  EXPECT_FALSE(r2.error.empty()) << "no numeric metrics must be an error";
}

}  // namespace
}  // namespace xk::benchdiff
