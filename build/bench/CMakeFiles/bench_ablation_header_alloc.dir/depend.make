# Empty dependencies file for bench_ablation_header_alloc.
# This may be replaced when dependencies are built.
