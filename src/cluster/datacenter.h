// Datacenter-shaped topology + workload: k client segments fan in through an
// IP router to a replica-pool segment, driven by open-loop arrival processes.
//
// This is the growth step from "32 independent pairs" to a cluster-shaped
// experiment: every client runs a VPOOL (virtual service address over the
// replica pool) and an open-loop generator, all traffic funnels through the
// core router's IP forwarding, and the replicas serve an oracle-checked echo.
// Everything reported is simulated and engine-invariant: byte-identical at
// any --engine-threads width.

#ifndef XK_SRC_CLUSTER_DATACENTER_H_
#define XK_SRC_CLUSTER_DATACENTER_H_

#include <string>
#include <vector>

#include "src/app/oracle.h"
#include "src/cluster/arrivals.h"
#include "src/cluster/vpool.h"
#include "src/sim/fault.h"
#include "src/stat/histogram.h"

namespace xk {

struct DatacenterSpec {
  int client_segments = 4;     // k: segments of load generators
  int clients_per_segment = 2; // m: hosts per client segment
  int replicas = 4;            // N: server pool size (all on the server segment)
  VpoolPolicy policy = VpoolPolicy::kRoundRobin;
  std::vector<uint32_t> weights;  // kWeighted only
  ArrivalSpec arrivals;        // per-client arrival process
  size_t payload_bytes = 64;   // request payload after the 8-byte oracle id
  SimTime service_delay = 0;   // per-request replica service time
  SimTime readmit_after = Msec(150);
  // Nonzero: arm idle-session eviction (kSetIdleTimeout) on every
  // session-owning layer -- client VPOOL/SELECT/CHANNEL/VIP and the replicas'
  // stacks, including rebuilt stacks after a crash/restart. Cold sessions are
  // then reclaimed mid-run, racing retransmissions and failover.
  SimTime idle_timeout = 0;
  FaultPlan faults;            // optional campaign (replica crash, partition...)
  SimTime crash_at = 0;        // failover-timeline window for phase attribution
  SimTime restart_at = 0;      //   (0,0 = no window; normally from the plan)
  int engine_threads = 0;      // 0 = thread default
  uint64_t seed = 1;

  // --- overload control (all default-off: 0 disables each mechanism) ---
  SimTime deadline = 0;          // per-call deadline, stamped by the generators
  uint32_t retry_ratio_ppm = 0;  // CHANNEL retry budget: retries per call, ppm
  uint32_t retry_burst = 0;      //   token-bucket burst, in calls' worth
  uint32_t max_inflight = 0;     // replica admission: delayed-service window
  SimTime max_backlog = 0;       // replica admission: run-queue delay bound
  uint32_t concurrency_cap = 0;  // VPOOL per-replica outstanding cap
  uint32_t breaker_min_volume = 0;  // VPOOL breaker: window volume to judge at
  uint32_t breaker_trip_ppm = 0;    //   bad-outcome ratio that trips it
  SimTime hedge_delay = 0;       // ClusterClient hedging base delay
};

struct DatacenterResult {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t success_ppm = 0;          // completed / issued, parts per million
  double offered_cps = 0;            // issued / horizon (calls per second)
  double goodput_cps = 0;            // completed / last completion time
  Histogram rtt;                     // per-call round trips, merged client order
  SimTime last_done_at = 0;
  SimTime sum_done_at = 0;           // determinism probe
  uint64_t events_fired = 0;

  // Per-replica request share, from the client-side VPOOL counters (summed
  // over clients; survives replica crashes, unlike server-side counts).
  std::vector<uint64_t> replica_calls;
  uint64_t share_spread_ppm = 0;     // (max - min) / mean over replica_calls

  // VPOOL health aggregates (summed over clients).
  uint64_t down_marks = 0;
  uint64_t readmits = 0;
  uint64_t rerouted_opens = 0;
  uint64_t all_down_failures = 0;
  uint64_t session_flushes = 0;
  uint64_t late_replies = 0;         // summed over ClusterClients
  // Idle evictions summed over the client-side stacks (VPOOL + SELECT +
  // CHANNEL + VIP); 0 unless spec.idle_timeout was set.
  uint64_t idle_evictions = 0;

  // Overload-control aggregates (all 0 with the mechanisms off).
  uint64_t shed = 0;              // calls failed DEADLINE_EXCEEDED
  uint64_t rejected = 0;          // calls failed BUSY
  uint64_t budget_exhausted = 0;  // calls failed RESOURCE_EXHAUSTED
  uint64_t hedges = 0;            // hedged second attempts issued
  uint64_t hedge_cancels = 0;     // hedges cancelled by a fast primary
  uint64_t capped_rejects = 0;    // VPOOL pushes failed with all replicas capped
  uint64_t breaker_trips = 0;     // VPOOL circuit-breaker trips

  // Failover timeline (issue-time attribution against [crash_at, restart_at)).
  struct Phase {
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t success_ppm = 0;
  };
  Phase phases[3];                   // 0 = pre, 1 = outage, 2 = post

  AmoOracle::Report oracle;

  struct RouterStat {
    std::string name;
    uint64_t forwards = 0;
    uint64_t ttl_drops = 0;
    uint64_t no_route_drops = 0;
  };
  std::vector<RouterStat> routers;

  struct SegStat {
    int segment = 0;
    uint64_t frames = 0;
    uint64_t bytes = 0;
    uint64_t utilization_ppm = 0;
    uint64_t queued_frames = 0;
    uint64_t peak_queue_depth = 0;
    int64_t wait_p99_ns = 0;
    uint64_t frames_dropped = 0;
    uint64_t down_drops = 0;
    uint64_t fault_drops = 0;
  };
  std::vector<SegStat> segments;
};

// Builds the topology, runs the workload to quiescence, tears it down.
DatacenterResult MeasureDatacenter(const DatacenterSpec& spec);

}  // namespace xk

#endif  // XK_SRC_CLUSTER_DATACENTER_H_
