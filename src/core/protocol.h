// The x-kernel uniform protocol interface (paper, Section 2).
//
// Every protocol -- device driver, IP, the RPC layers, virtual protocols --
// presents exactly this interface, which is what makes the paper's two design
// techniques possible:
//
//   * protocols with the same semantics are substitutable (VIP can hand M_RPC
//     an ETH session or an IP session; M_RPC cannot tell the difference), and
//   * the binding between layers happens at run time through open/open_enable,
//     not at compile time.
//
// Protocol objects create sessions and demultiplex incoming messages to them;
// session objects hold per-connection state and interpret messages (push on
// the way down, pop on the way up).
//
// Cost accounting: the public Push/Demux entry points are non-virtual; they
// charge the uniform layer-crossing cost ("it costs only one procedure call
// to pass a message from a high-level protocol to a low-level protocol") plus
// whatever the host environment adds (mbuf allocation in the SunOS model,
// etc.), then dispatch to the protected virtual implementations. Protocol
// implementations charge their own header/map/timer work through the Kernel's
// Charge* helpers.

#ifndef XK_SRC_CORE_PROTOCOL_H_
#define XK_SRC_CORE_PROTOCOL_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/control.h"
#include "src/core/message.h"
#include "src/core/participant.h"
#include "src/core/types.h"
#include "src/sim/event_queue.h"

namespace xk {

class Kernel;
class Protocol;
class Session;
class TraceSink;

using SessionRef = std::shared_ptr<Session>;

// Completion for asynchronous opens (used when an open must wait for address
// resolution, e.g. VIP consulting ARP; everything else opens synchronously).
using OpenCallback = std::function<void(Result<SessionRef>)>;

// Generic per-protocol traffic counters, maintained unconditionally at the
// non-virtual entry points (host bookkeeping only -- never charged to the
// simulated CPU). Protocol-specific statistics ride along via
// Protocol::ExportCounters overrides.
struct ProtoCounters {
  uint64_t msgs_out = 0;     // messages entering a session's Push
  uint64_t bytes_out = 0;
  uint64_t msgs_in = 0;      // messages entering the protocol's Demux
  uint64_t bytes_in = 0;
  uint64_t opens = 0;        // active Open calls (including cache hits)
  uint64_t open_enables = 0;
  uint64_t demux_drops = 0;  // Demux calls that returned an error
  uint64_t map_hits = 0;     // charged DemuxMap resolves that found a binding
  uint64_t map_misses = 0;
};

// Receives one (name, value) pair per counter during ExportCounters.
using CounterEmit = std::function<void(std::string_view name, uint64_t value)>;

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

// An instance of a protocol created at run time: the end-point of a network
// connection. Interprets messages and maintains connection state.
class Session : public std::enable_shared_from_this<Session> {
 public:
  Session(Protocol& owner, Protocol* hlp);
  virtual ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Passes a message down into this session (charged layer crossing).
  Status Push(Message& msg);

  // Passes a message up out of this session; called by the owning protocol's
  // demux. `lls` is the lower session the message arrived on (null when the
  // owning protocol sits directly on a device).
  Status Pop(Message& msg, Session* lls);

  // Reads/sets session parameters. Unknown opcodes are forwarded to the
  // lowest session below this one, so e.g. kGetPeerHost asked of a CHANNEL
  // session reaches the IP/ETH level that knows the answer.
  Status Control(ControlOp op, ControlArgs& args);

  // The protocol this session is an instance of.
  Protocol& owner() const { return owner_; }

  // The high-level protocol that opened (or was handed) this session, i.e.
  // where popped messages are delivered. May be reassigned when a cached
  // session is re-opened by a different client.
  Protocol* hlp() const { return hlp_; }
  void set_hlp(Protocol* hlp) { hlp_ = hlp; }

  // Cached at construction (== owner().kernel()): Push/Pop read it on every
  // layer crossing, so the double indirection through the owning protocol is
  // paid once per session instead of once per message.
  Kernel& kernel() const { return kernel_; }

  SessionRef Ref() { return shared_from_this(); }

  // Trace identity, assigned lazily by a TraceSink (0 = never traced).
  uint64_t trace_id() const { return trace_id_; }

  // Sim time of the last Push/Pop/NoteActivity through this session.
  // Meaningful only for sessions the owner registered with TrackIdle.
  SimTime last_active() const { return last_active_; }

 protected:
  virtual Status DoPush(Message& msg) = 0;
  virtual Status DoPop(Message& msg, Session* lls) = 0;
  virtual Status DoControl(ControlOp op, ControlArgs& args);

  // Veto for the owner's idle eviction: a session with externally visible
  // state in flight (an outstanding call, an un-acked reply) says no here and
  // is skipped until the state drains. Consulted only for tracked sessions.
  virtual bool CanEvict() const { return true; }

  // Stamps activity on this session for idle tracking. Push/Pop call it
  // automatically; subclasses whose traffic bypasses those entry points
  // (e.g. CHANNEL delivers packets straight to HandlePacket) call it at their
  // own activity points. No-op for untracked sessions; never charged.
  void NoteActivity();

  // The session below this one, used to forward control ops this level does
  // not understand. Null for sessions that sit directly on a device.
  virtual Session* lower_for_control() const { return nullptr; }

  // Delivers `msg` upward: invokes hlp()->Demux(this, msg). The common tail
  // of every DoPop.
  Status DeliverUp(Message& msg);

 private:
  friend class TraceSink;
  friend class Protocol;  // idle-LRU intrusive links

  Protocol& owner_;
  Protocol* hlp_;
  Kernel& kernel_;
  uint64_t trace_id_ = 0;

  // Intrusive idle-LRU state, owned by the owning protocol (head = least
  // recently active). Host bookkeeping only; never charged.
  Session* idle_prev_ = nullptr;
  Session* idle_next_ = nullptr;
  SimTime last_active_ = 0;
  bool idle_eligible_ = false;  // owner called TrackIdle on this session
  bool idle_linked_ = false;    // currently on the owner's LRU list
};

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

class Protocol {
 public:
  // `lowers` are the capabilities this protocol was configured with at kernel
  // build time ("each protocol object is given a capability at configuration
  // time for the low-level protocols upon which it depends").
  Protocol(Kernel& kernel, std::string name, std::vector<Protocol*> lowers);
  virtual ~Protocol();

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  // --- session creation (Section 2) -----------------------------------------

  // Actively creates (or returns a cached) session for `parts`, on behalf of
  // high-level protocol `hlp`.
  Result<SessionRef> Open(Protocol& hlp, const ParticipantSet& parts);

  // Like Open but may complete later (address resolution). The default
  // implementation completes synchronously with Open's result.
  virtual void OpenAsync(Protocol& hlp, const ParticipantSet& parts, OpenCallback done);

  // Passively enables session creation: messages matching `parts` (typically
  // only the local participant is specified) create sessions on demand and
  // deliver to `hlp`.
  Status OpenEnable(Protocol& hlp, const ParticipantSet& parts);

  // Revokes a passive enable.
  virtual Status OpenDisable(Protocol& hlp, const ParticipantSet& parts);

  // --- demultiplexing ---------------------------------------------------------

  // Switches an incoming message to one of this protocol's sessions, creating
  // one first (open_done) if a matching enable exists. `lls` is the session
  // of the protocol below that the message arrived on (null for drivers).
  Status Demux(Session* lls, Message& msg);

  // Upcall: a lower protocol `llp` passively created `lls` on our behalf
  // (we had open-enabled it). Lets this protocol wire its own state to the
  // new lower session. Default: accept and ignore (protocols that demux
  // purely on their own header don't need the notification).
  virtual Status OpenDoneUp(Protocol& llp, SessionRef lls, const ParticipantSet& parts);

  // Upcall: an operation pending inside lower session `lls` failed
  // asynchronously (e.g. a CHANNEL call exhausted its retransmissions).
  // Default: ignore.
  virtual void SessionError(Session& lls, Status error);

  // Like SessionError, but carries the failing request message when the lower
  // layer still holds it, so multiplexing layers (SELECT, ClusterClient) can
  // identify WHICH call failed instead of guessing. Overload-control rejects
  // (BUSY, DEADLINE_EXCEEDED) arrive out of order relative to issue, so
  // identity matters there. Default: degrade to SessionError.
  virtual void SessionCallError(Session& lls, Status error, const Message* request) {
    (void)request;
    SessionError(lls, error);
  }

  // --- control ----------------------------------------------------------------

  Status Control(ControlOp op, ControlArgs& args);

  // --- accessors --------------------------------------------------------------

  Kernel& kernel() const { return kernel_; }
  const std::string& name() const { return name_; }

  // The i'th configured lower protocol (null if not configured).
  Protocol* lower(size_t i = 0) const { return i < lowers_.size() ? lowers_[i] : nullptr; }
  size_t num_lowers() const { return lowers_.size(); }

  // --- observability ----------------------------------------------------------

  // Generic traffic counters (host-side only; see ProtoCounters). Mutated by
  // the non-virtual entry points and by this protocol's DemuxMaps.
  ProtoCounters& counters() { return counters_; }
  const ProtoCounters& counters() const { return counters_; }

  // Emits every counter this protocol maintains, generic ones first.
  // Overrides call the base, then emit their protocol-specific statistics.
  virtual void ExportCounters(const CounterEmit& emit) const;

  // Emits instantaneous state (queue depths, calls in flight, retransmit
  // counts) for the time-series sampler. Unlike ExportCounters this is called
  // repeatedly mid-run, so overrides must be read-only and cheap. Default:
  // nothing.
  virtual void ExportGauges(const CounterEmit& emit) const { (void)emit; }

  // --- idle-session eviction --------------------------------------------------
  //
  // Generic sim-clock LRU over this protocol's sessions. Session-owning
  // protocols register each created session with TrackIdle; Push/Pop (and
  // explicit NoteActivity calls) move it to the hot end. With a nonzero
  // timeout (ControlOp::kSetIdleTimeout) a one-shot sweep timer fires at the
  // cold end's deadline and asks the protocol to drop its owning references
  // (EvictSession); ControlOp::kEvictIdle sweeps immediately. Each eviction
  // is charged as a session destroy and counted in ExportCounters. A session
  // that declines (CanEvict / EvictSession veto) is parked off the list until
  // its next activity relinks it, so an unevictable session never keeps the
  // sweep timer -- or the simulation -- alive.

  // Idle time after which a tracked session may be evicted (0 = disabled).
  SimTime idle_timeout() const { return idle_.timeout; }
  uint64_t idle_evictions() const { return idle_.evicted; }
  uint64_t idle_declined() const { return idle_.declined; }
  // Sessions currently on the LRU list (linked, not yet parked/evicted).
  size_t idle_tracked() const { return idle_.tracked; }

 protected:
  virtual Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts);
  virtual Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts);
  virtual Status DoDemux(Session* lls, Message& msg) = 0;
  virtual Status DoControl(ControlOp op, ControlArgs& args);

  // Opts this protocol into kSetIdleTimeout/kEvictIdle handling in the base
  // DoControl. Protocols that never call TrackIdle leave it off so the ops
  // forward down the stack to the first session-owning layer.
  void MarkIdleCapable() { idle_.capable = true; }

  // Registers a session for idle tracking (call once after creating it).
  void TrackIdle(Session& s);

  // Drops every owning reference this protocol holds on `s` (map bindings,
  // caches), making the session destructible; returns false to decline --
  // e.g. when something outside the protocol still holds a reference.
  // Overridden by every protocol that calls TrackIdle; must not be charged
  // (the sweep charges session_destroy on success).
  virtual bool EvictSession(Session& s);

  // Evicts every tracked session idle for at least `min_idle` (front of the
  // LRU first). Returns the number evicted. Must run within a task.
  uint64_t EvictIdle(SimTime min_idle);

 private:
  friend class Session;

  void TouchIdle(Session& s);   // append/move to the hot end, arm sweep
  void UnlinkIdle(Session& s);  // detach from the LRU list
  void ArmIdleSweep();          // one-shot timer at the cold end's deadline
  void IdleSweep();

  Kernel& kernel_;
  std::string name_;
  std::vector<Protocol*> lowers_;
  ProtoCounters counters_;

  struct IdleState {
    bool capable = false;
    SimTime timeout = 0;
    Session* head = nullptr;  // least recently active
    Session* tail = nullptr;
    size_t tracked = 0;
    uint64_t evicted = 0;
    uint64_t declined = 0;
    bool sweep_armed = false;
    EventHandle sweep;
  } idle_;
};

// Typed convenience wrappers over common control ops.
Result<uint64_t> CtlGetU64(Protocol& p, ControlOp op);
Result<uint64_t> CtlGetU64(Session& s, ControlOp op);
Result<IpAddr> CtlGetIp(Session& s, ControlOp op);

}  // namespace xk

#endif  // XK_SRC_CORE_PROTOCOL_H_
