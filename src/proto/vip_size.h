// VIP_ADDR and VIP_SIZE: the two virtual protocols of Section 4.3.
//
// After FRAGMENT is factored out of the RPC stack it can be moved BELOW the
// virtual protocol and bypassed per message (Figure 3(b)):
//
//     SELECT - CHANNEL - VIP_SIZE - { VIP_ADDR(-ETH | -IP),  FRAGMENT - VIP_ADDR }
//
//  * VIP_SIZE selects between FRAGMENT and VIP_ADDR based on message size; it
//    touches every message (one length test per push), exactly like VIP.
//  * VIP_ADDR selects between ETH and IP, but is involved only at open time:
//    "it opens a lower-level IP or ETH session and RETURNS IT rather than
//    returning a session of its own." After open it adds zero overhead.
//
// Together they reproduce the paper's result that the layered stack recovers
// monolithic latency for small messages: bypassing FRAGMENT saves its 0.21 ms
// and re-adds only VIP_SIZE's 0.06 ms.

#ifndef XK_SRC_PROTO_VIP_SIZE_H_
#define XK_SRC_PROTO_VIP_SIZE_H_

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/proto/arp.h"
#include "src/proto/vip.h"

namespace xk {

// ---------------------------------------------------------------------------
// VIP_ADDR
// ---------------------------------------------------------------------------

class VipAddrProtocol : public Protocol {
 public:
  // Pass ip == nullptr for an ETH-only open-time shim: this is how M_RPC runs
  // "directly on the ethernet" (the M_RPC-ETH configuration) while keeping
  // host-addressed participants -- the shim maps (host, protocol) onto
  // (station, type) at open time and then costs nothing per message.
  VipAddrProtocol(Kernel& kernel, Protocol* eth, Protocol* ip, ArpProtocol* arp,
                  std::string name = "vipaddr");

 protected:
  // Returns the ETH session (destination on-link) or the IP session
  // (off-link) directly, bound to the invoking hlp. No VIP_ADDR session ever
  // exists, so VIP_ADDR costs nothing after open.
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;

  // Enables both paths directly for `hlp`; incoming messages bypass VIP_ADDR.
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;

  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  Protocol* eth() const { return lower(0); }
  Protocol* ip() const { return lower(1); }
  ArpProtocol* arp_;
};

// ---------------------------------------------------------------------------
// VIP_SIZE
// ---------------------------------------------------------------------------

class VipSizeSession;

class VipSizeProtocol : public Protocol {
 public:
  // `small` is the direct path (VIP_ADDR, or any IP-semantics protocol);
  // `big` is the bulk path (FRAGMENT). `arp` is used to recover the peer's
  // host address for sessions created passively from the Ethernet side.
  VipSizeProtocol(Kernel& kernel, Protocol* small, Protocol* big, ArpProtocol* arp,
                  std::string name = "vipsize");

  Status OpenDoneUp(Protocol& llp, SessionRef lls, const ParticipantSet& parts) override;

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;

 private:
  friend class VipSizeSession;
  using Key = std::tuple<IpAddr, IpProtoNum>;
  struct Enable {
    Protocol* hlp = nullptr;
    IpProtoNum ip_proto = 0;
    RelProtoNum rel_proto = 0;
  };

  Protocol* small() const { return lower(0); }
  Protocol* big() const { return lower(1); }
  size_t Threshold();

  ArpProtocol* arp_;
  DemuxMap<Key> active_;
  DemuxMap<IpProtoNum, Enable> passive_by_ip_;
  DemuxMap<RelProtoNum, Enable> passive_by_rel_;
  DemuxMap<Session*, SessionRef> by_lls_;
};

class VipSizeSession : public Session {
 public:
  VipSizeSession(VipSizeProtocol& owner, Protocol* hlp, std::optional<IpAddr> peer,
                 IpProtoNum ip_proto, RelProtoNum rel_proto, SessionRef small_sess,
                 SessionRef big_sess, size_t threshold);

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override {
    return small_sess_ != nullptr ? small_sess_.get() : big_sess_.get();
  }

 private:
  friend class VipSizeProtocol;
  Status EnsureSmall();
  Status EnsureBig();

  VipSizeProtocol& vs_;
  std::optional<IpAddr> peer_;
  IpProtoNum ip_proto_;
  RelProtoNum rel_proto_;
  SessionRef small_sess_;
  SessionRef big_sess_;
  size_t threshold_;
};

}  // namespace xk

#endif  // XK_SRC_PROTO_VIP_SIZE_H_
