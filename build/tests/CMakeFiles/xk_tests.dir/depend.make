# Empty dependencies file for xk_tests.
# This may be replaced when dependencies are built.
