#include "src/core/message.h"

#include "src/sim/object_pool.h"

#include <algorithm>
#include <cstring>

namespace xk {

namespace {
// thread_local so concurrent simulations (bench_suite runs one independent
// Internet per worker thread) can ablate the policy without racing; within a
// thread the semantics are unchanged.
thread_local HeaderAllocPolicy g_default_policy = HeaderAllocPolicy::kPointerAdjust;
}  // namespace

HeaderAllocPolicy Message::default_alloc_policy() { return g_default_policy; }

void Message::set_default_alloc_policy(HeaderAllocPolicy policy) { g_default_policy = policy; }

Message::Message() = default;

Message::Message(size_t payload_len) {
  if (payload_len > 0) {
    auto block = AcquirePooled<Block>();
    block->bytes.assign(payload_len, 0);
    chunks_.push_back(Chunk{std::move(block), 0, payload_len});
    length_ = payload_len;
  }
}

Message Message::FromBytes(std::span<const uint8_t> bytes) {
  Message m;
  if (!bytes.empty()) {
    auto block = AcquirePooled<Block>();
    block->bytes.assign(bytes.begin(), bytes.end());
    m.chunks_.push_back(Chunk{std::move(block), 0, bytes.size()});
    m.length_ = bytes.size();
  }
  return m;
}

void Message::EnsureOwnedArenaFor(size_t more) {
  if (arena_ == nullptr) {
    arena_ = AcquirePooled<Arena>();
    arena_->buf.resize(kHeaderArenaSize);
    arena_->low = kHeaderArenaSize;
    arena_start_ = kHeaderArenaSize;
    arena_len_ = 0;
  }
  const bool exclusive = arena_.use_count() == 1 && arena_->low == arena_start_;
  if (exclusive && arena_start_ >= more) {
    return;  // can extend in place
  }
  // The live region must move to a fresh arena (shared with a sibling copy,
  // or out of space). If even a fresh arena cannot hold it, spill the live
  // region into a payload chunk first.
  if (arena_len_ + more > kHeaderArenaSize) {
    if (arena_len_ > 0) {
      auto block = AcquirePooled<Block>();
      block->bytes.assign(arena_->buf.begin() + static_cast<ptrdiff_t>(arena_start_),
                          arena_->buf.begin() + static_cast<ptrdiff_t>(arena_start_ + arena_len_));
      chunks_.push_front(Chunk{std::move(block), 0, arena_len_});
    }
    arena_len_ = 0;
  }
  auto fresh = AcquirePooled<Arena>();
  fresh->buf.resize(std::max(kHeaderArenaSize, arena_len_ + more));
  const size_t new_start = fresh->buf.size() - arena_len_;
  if (arena_len_ > 0) {
    std::memcpy(fresh->buf.data() + new_start, arena_->buf.data() + arena_start_, arena_len_);
  }
  fresh->low = new_start;
  arena_ = std::move(fresh);
  arena_start_ = new_start;
}

void Message::PushHeader(std::span<const uint8_t> header) {
  if (header.empty()) {
    return;
  }
  if (g_default_policy == HeaderAllocPolicy::kPerLayerAlloc) {
    // Original x-kernel scheme: a fresh buffer per header. Spill any arena
    // region so the new header chunk really is the front of the message.
    if (arena_len_ > 0) {
      auto spill = AcquirePooled<Block>();
      spill->bytes.assign(arena_->buf.begin() + static_cast<ptrdiff_t>(arena_start_),
                          arena_->buf.begin() + static_cast<ptrdiff_t>(arena_start_ + arena_len_));
      chunks_.push_front(Chunk{std::move(spill), 0, arena_len_});
      arena_.reset();
      arena_len_ = 0;
      arena_start_ = 0;
    }
    auto block = AcquirePooled<Block>();
    block->bytes.assign(header.begin(), header.end());
    chunks_.push_front(Chunk{std::move(block), 0, header.size()});
    length_ += header.size();
    return;
  }
  EnsureOwnedArenaFor(header.size());
  arena_start_ -= header.size();
  std::memcpy(arena_->buf.data() + arena_start_, header.data(), header.size());
  arena_->low = arena_start_;
  arena_len_ += header.size();
  length_ += header.size();
}

size_t Message::CopyOut(std::span<uint8_t> out) const {
  size_t want = std::min(out.size(), length_);
  size_t copied = 0;
  if (want > 0 && arena_len_ > 0) {
    const size_t take = std::min(want, arena_len_);
    std::memcpy(out.data(), arena_->buf.data() + arena_start_, take);
    copied += take;
    want -= take;
  }
  for (size_t i = 0; i < chunks_.size() && want > 0; ++i) {
    const Chunk& c = chunks_[i];
    const size_t take = std::min(want, c.len);
    std::memcpy(out.data() + copied, c.block->bytes.data() + c.off, take);
    copied += take;
    want -= take;
  }
  return copied;
}

bool Message::PeekHeader(std::span<uint8_t> out) const {
  if (out.size() > length_) {
    return false;
  }
  CopyOut(out);
  return true;
}

bool Message::Discard(size_t n) {
  if (n > length_) {
    return false;
  }
  size_t left = n;
  if (left > 0 && arena_len_ > 0) {
    const size_t take = std::min(left, arena_len_);
    arena_start_ += take;
    arena_len_ -= take;
    left -= take;
    if (arena_len_ == 0) {
      arena_.reset();
      arena_start_ = 0;
    }
  }
  while (left > 0) {
    Chunk& c = chunks_.front();
    const size_t take = std::min(left, c.len);
    c.off += take;
    c.len -= take;
    left -= take;
    if (c.len == 0) {
      chunks_.pop_front();
    }
  }
  length_ -= n;
  return true;
}

bool Message::PopHeader(std::span<uint8_t> out) {
  if (!PeekHeader(out)) {
    return false;
  }
  Discard(out.size());
  return true;
}

void Message::Truncate(size_t n) {
  if (n >= length_) {
    return;
  }
  if (n <= arena_len_) {
    arena_len_ = n;
    chunks_.clear();
    if (arena_len_ == 0) {
      arena_.reset();
      arena_start_ = 0;
    }
    length_ = n;
    return;
  }
  size_t remaining = n - arena_len_;
  size_t keep = 0;
  for (size_t i = 0; i < chunks_.size() && remaining > 0; ++i) {
    Chunk& c = chunks_[i];
    const size_t take = std::min(remaining, c.len);
    c.len = take;
    remaining -= take;
    ++keep;
  }
  chunks_.truncate(keep);
  length_ = n;
}

void Message::AppendArenaAsChunkTo(Message& dst, size_t skip, size_t take) const {
  if (take == 0) {
    return;
  }
  auto block = AcquirePooled<Block>();
  block->bytes.assign(
      arena_->buf.begin() + static_cast<ptrdiff_t>(arena_start_ + skip),
      arena_->buf.begin() + static_cast<ptrdiff_t>(arena_start_ + skip + take));
  dst.chunks_.push_back(Chunk{std::move(block), 0, take});
  dst.length_ += take;
}

Message Message::Slice(size_t offset, size_t len) const {
  Message out;
  offset = std::min(offset, length_);
  len = std::min(len, length_ - offset);
  if (len == 0) {
    return out;
  }
  size_t skip = offset;
  size_t want = len;
  if (arena_len_ > 0) {
    if (skip < arena_len_) {
      const size_t take = std::min(want, arena_len_ - skip);
      AppendArenaAsChunkTo(out, skip, take);
      want -= take;
      skip = 0;
    } else {
      skip -= arena_len_;
    }
  }
  for (size_t i = 0; i < chunks_.size() && want > 0; ++i) {
    const Chunk& c = chunks_[i];
    if (skip >= c.len) {
      skip -= c.len;
      continue;
    }
    const size_t take = std::min(want, c.len - skip);
    out.chunks_.push_back(Chunk{c.block, c.off + skip, take});
    out.length_ += take;
    want -= take;
    skip = 0;
  }
  return out;
}

void Message::Append(const Message& m) {
  if (m.arena_len_ > 0) {
    m.AppendArenaAsChunkTo(*this, 0, m.arena_len_);
  }
  for (size_t i = 0; i < m.chunks_.size(); ++i) {
    const Chunk& c = m.chunks_[i];
    if (c.len > 0) {
      chunks_.push_back(c);
      length_ += c.len;
    }
  }
}

std::vector<uint8_t> Message::Flatten() const {
  std::vector<uint8_t> out(length_);
  CopyOut(out);
  return out;
}

void Message::FlattenInto(std::vector<uint8_t>& out) const {
  out.resize(length_);
  CopyOut(out);
}

bool Message::ContentEquals(const Message& other) const {
  if (length_ != other.length_) {
    return false;
  }
  return Flatten() == other.Flatten();
}

}  // namespace xk
