// Table II: Monolithic RPC versus Layered RPC (paper, Section 4.2).
//
// Shape claims to reproduce:
//   * layering costs ~0.14 ms of latency (1.93 vs 1.79);
//   * throughput is nearly identical (both saturate the wire), because only
//     FRAGMENT -- the bottom layer -- touches the 16 individual packets of a
//     16 KB message; CHANNEL and SELECT handle one message each;
//   * the layered version uses slightly LESS CPU per large message.

#include "bench/bench_util.h"

namespace xk {
namespace {

int Run() {
  PrintTableHeader("Table II: Monolithic RPC versus Layered RPC");

  ConfigResult m_vip =
      RpcBench::Measure("M_RPC-VIP", [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
  PrintRow(m_vip, 1.79, 860, 1.04);

  ConfigResult l_vip =
      RpcBench::Measure("L_RPC-VIP", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  PrintRow(l_vip, 1.93, 839, 1.03);

  std::printf("\nDerived quantities:\n");
  std::printf("  Layering penalty: %+.2f ms        [paper: +0.14 ms]\n",
              l_vip.latency_ms - m_vip.latency_ms);
  std::printf("  CPU per 16k call (client+server): monolithic %.2f, layered %.2f ms "
              "[paper: layered slightly less]\n",
              m_vip.client_cpu_ms + m_vip.server_cpu_ms,
              l_vip.client_cpu_ms + l_vip.server_cpu_ms);
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::BenchObservers observers(argc, argv);
  return xk::Run();
}
