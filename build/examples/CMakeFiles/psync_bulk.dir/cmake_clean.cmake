file(REMOVE_RECURSE
  "CMakeFiles/psync_bulk.dir/psync_bulk.cpp.o"
  "CMakeFiles/psync_bulk.dir/psync_bulk.cpp.o.d"
  "psync_bulk"
  "psync_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psync_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
