file(REMOVE_RECURSE
  "CMakeFiles/mix_and_match.dir/mix_and_match.cpp.o"
  "CMakeFiles/mix_and_match.dir/mix_and_match.cpp.o.d"
  "mix_and_match"
  "mix_and_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_and_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
