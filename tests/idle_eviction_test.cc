// Generic idle-session eviction (core Protocol LRU + sweep timer), exercised
// through UDP -- the simplest slab-pooled, idle-capable protocol. Pins the
// control-op surface (kSetIdleTimeout / kGetIdleTimeout / kEvictIdle), the
// external-reference veto, LRU ordering, park-and-relink for declined
// sessions, and the live_sessions gauge the session-owning protocols export.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/proto/topology.h"
#include "src/proto/udp.h"
#include "tests/test_util.h"

namespace xk {
namespace {

struct IdleEvictionFixture : ::testing::Test {
  void SetUp() override {
    net = Internet::TwoHosts();
    client = &net->host("client");
    server = &net->host("server");
    RunIn(*client->kernel, [&] {
      cudp = &client->kernel->Emplace<UdpProtocol>(*client->kernel, client->ip);
      ca = &client->kernel->Emplace<TestAnchor>(*client->kernel);
    });
    RunIn(*server->kernel, [&] {
      sudp = &server->kernel->Emplace<UdpProtocol>(*server->kernel, server->ip);
      sa = &server->kernel->Emplace<TestAnchor>(*server->kernel);
      ParticipantSet enable;
      enable.local.port = 7;
      EXPECT_TRUE(sudp->OpenEnable(*sa, enable).ok());
    });
  }

  // Opens a client session and immediately drops the test's reference, so the
  // active map holds the only one (the evictable steady state).
  void OpenAndDrop(uint16_t local_port) { (void)OpenHeld(local_port); }

  SessionRef OpenHeld(uint16_t local_port) {
    SessionRef out;
    RunIn(*client->kernel, [&] {
      ParticipantSet parts;
      parts.local.port = local_port;
      parts.peer.host = server->kernel->ip_addr();
      parts.peer.port = 7;
      Result<SessionRef> sess = cudp->Open(*ca, parts);
      ASSERT_TRUE(sess.ok());
      out = *sess;
    });
    return out;
  }

  Status SetIdleTimeout(Protocol& p, SimTime t) {
    Status out = OkStatus();
    RunIn(*client->kernel, [&] {
      ControlArgs args;
      args.u64 = static_cast<uint64_t>(t);
      out = p.Control(ControlOp::kSetIdleTimeout, args);
    });
    return out;
  }

  std::unique_ptr<Internet> net;
  HostStack* client = nullptr;
  HostStack* server = nullptr;
  UdpProtocol* cudp = nullptr;
  UdpProtocol* sudp = nullptr;
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
};

TEST_F(IdleEvictionFixture, IdleOpsAreUnsupportedBelowTheSessionLayer) {
  // IP (and ETH under it) never call TrackIdle, so the ops fall through the
  // whole lower stack and come back unsupported -- they are meaningful only
  // at a session-owning layer.
  RunIn(*client->kernel, [&] {
    ControlArgs args;
    args.u64 = 1000;
    EXPECT_EQ(client->ip->Control(ControlOp::kSetIdleTimeout, args).code(),
              StatusCode::kUnsupported);
    EXPECT_EQ(client->ip->Control(ControlOp::kGetIdleTimeout, args).code(),
              StatusCode::kUnsupported);
    EXPECT_EQ(client->ip->Control(ControlOp::kEvictIdle, args).code(),
              StatusCode::kUnsupported);
  });
}

TEST_F(IdleEvictionFixture, TimeoutRoundTripsThroughControl) {
  EXPECT_TRUE(SetIdleTimeout(*cudp, Msec(3)).ok());
  RunIn(*client->kernel, [&] {
    ControlArgs args;
    EXPECT_TRUE(cudp->Control(ControlOp::kGetIdleTimeout, args).ok());
    EXPECT_EQ(args.u64, static_cast<uint64_t>(Msec(3)));
  });
  EXPECT_EQ(cudp->idle_timeout(), Msec(3));
}

TEST_F(IdleEvictionFixture, SweepTimerEvictsIdleSessionsToQuiescence) {
  for (uint16_t p = 100; p < 108; ++p) {
    OpenAndDrop(p);
  }
  EXPECT_EQ(cudp->live_sessions(), 8u);
  EXPECT_TRUE(SetIdleTimeout(*cudp, Msec(5)).ok());
  net->RunAll();  // the one-shot sweep fires, evicts, and does not re-arm
  EXPECT_EQ(cudp->live_sessions(), 0u);
  EXPECT_EQ(cudp->idle_evictions(), 8u);
  EXPECT_EQ(cudp->idle_tracked(), 0u);
}

TEST_F(IdleEvictionFixture, ZeroTimeoutDisablesTheSweep) {
  OpenAndDrop(100);
  EXPECT_TRUE(SetIdleTimeout(*cudp, 0).ok());
  net->RunAll();
  EXPECT_EQ(cudp->live_sessions(), 1u);
  EXPECT_EQ(cudp->idle_evictions(), 0u);
}

TEST_F(IdleEvictionFixture, ExternalReferenceVetoesEvictionUntilDropped) {
  SessionRef held = OpenHeld(100);
  OpenAndDrop(101);
  EXPECT_TRUE(SetIdleTimeout(*cudp, Msec(5)).ok());
  net->RunAll();
  // The unreferenced session went; the held one declined and was parked.
  EXPECT_EQ(cudp->live_sessions(), 1u);
  EXPECT_EQ(cudp->idle_evictions(), 1u);
  EXPECT_EQ(cudp->idle_declined(), 1u);
  EXPECT_EQ(cudp->idle_tracked(), 0u);  // parked = off the LRU list

  // Parked is not forgotten: traffic relinks it, and once the external ref
  // is gone the next sweep reclaims it.
  RunIn(*client->kernel, [&] {
    Message msg = Message::FromBytes(Bytes({1, 2, 3}));
    EXPECT_TRUE(held->Push(msg).ok());
  });
  EXPECT_EQ(cudp->idle_tracked(), 1u);
  held.reset();
  net->RunAll();
  EXPECT_EQ(cudp->live_sessions(), 0u);
  EXPECT_EQ(cudp->idle_evictions(), 2u);
}

TEST_F(IdleEvictionFixture, EvictIdleSweepsImmediatelyAndRespectsMinIdle) {
  OpenAndDrop(100);  // oldest
  net->RunAll();
  const SimTime gap = Msec(10);
  // Age the first session by `gap`, then open a fresh one.
  client->kernel->RunTask(net->events().now() + gap, [&] {});
  net->RunAll();
  OpenAndDrop(101);

  RunIn(*client->kernel, [&] {
    ControlArgs args;
    args.u64 = static_cast<uint64_t>(Msec(5));  // only the aged one qualifies
    ASSERT_TRUE(cudp->Control(ControlOp::kEvictIdle, args).ok());
    EXPECT_EQ(args.u64, 1u);  // evicted count comes back in args
  });
  EXPECT_EQ(cudp->live_sessions(), 1u);

  RunIn(*client->kernel, [&] {
    ControlArgs args;
    args.u64 = 0;  // min idle 0: everything goes
    ASSERT_TRUE(cudp->Control(ControlOp::kEvictIdle, args).ok());
    EXPECT_EQ(args.u64, 1u);
  });
  EXPECT_EQ(cudp->live_sessions(), 0u);
}

TEST_F(IdleEvictionFixture, ActivityRefreshesLruOrder) {
  SessionRef hot = OpenHeld(100);
  OpenAndDrop(101);
  net->RunAll();
  // Age both, then touch the held one.
  client->kernel->RunTask(net->events().now() + Msec(10), [&] {
    Message msg = Message::FromBytes(Bytes({9}));
    EXPECT_TRUE(hot->Push(msg).ok());
  });
  net->RunAll();
  hot.reset();  // now unreferenced, but recently active

  RunIn(*client->kernel, [&] {
    ControlArgs args;
    args.u64 = static_cast<uint64_t>(Msec(5));
    ASSERT_TRUE(cudp->Control(ControlOp::kEvictIdle, args).ok());
    EXPECT_EQ(args.u64, 1u);  // only the stale one; the touched one is young
  });
  EXPECT_EQ(cudp->live_sessions(), 1u);
}

TEST_F(IdleEvictionFixture, CountersAndGaugesExportEvictionState) {
  for (uint16_t p = 100; p < 103; ++p) {
    OpenAndDrop(p);
  }
  uint64_t gauge_live = UINT64_MAX;
  cudp->ExportGauges([&](std::string_view name, uint64_t v) {
    if (name == "live_sessions") {
      gauge_live = v;
    }
  });
  EXPECT_EQ(gauge_live, 3u);

  EXPECT_TRUE(SetIdleTimeout(*cudp, Msec(5)).ok());
  net->RunAll();

  uint64_t ctr_evicted = UINT64_MAX;
  uint64_t ctr_declined = UINT64_MAX;
  cudp->ExportCounters([&](std::string_view name, uint64_t v) {
    if (name == "idle_evictions") {
      ctr_evicted = v;
    } else if (name == "idle_declined") {
      ctr_declined = v;
    }
  });
  EXPECT_EQ(ctr_evicted, 3u);
  EXPECT_EQ(ctr_declined, 0u);
  cudp->ExportGauges([&](std::string_view name, uint64_t v) {
    if (name == "live_sessions") {
      gauge_live = v;
    }
  });
  EXPECT_EQ(gauge_live, 0u);
}

}  // namespace
}  // namespace xk
