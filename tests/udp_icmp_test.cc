// Tests for UDP (ports, pseudo-header checksum, large datagrams over IP
// fragmentation) and ICMP echo.

#include <gtest/gtest.h>

#include "src/proto/icmp.h"
#include "src/proto/topology.h"
#include "src/proto/udp.h"
#include "tests/test_util.h"

namespace xk {
namespace {

struct UdpFixture : ::testing::Test {
  void SetUp() override {
    net = Internet::TwoHosts();
    client = &net->host("client");
    server = &net->host("server");
    RunIn(*client->kernel, [&] {
      cudp = &client->kernel->Emplace<UdpProtocol>(*client->kernel, client->ip);
      ca = &client->kernel->Emplace<TestAnchor>(*client->kernel);
    });
    RunIn(*server->kernel, [&] {
      sudp = &server->kernel->Emplace<UdpProtocol>(*server->kernel, server->ip);
      sa = &server->kernel->Emplace<TestAnchor>(*server->kernel);
      ParticipantSet enable;
      enable.local.port = 7;  // echo
      EXPECT_TRUE(sudp->OpenEnable(*sa, enable).ok());
    });
  }

  SessionRef OpenClientSession(uint16_t local_port = 1234, uint16_t peer_port = 7) {
    SessionRef out;
    RunIn(*client->kernel, [&] {
      ParticipantSet parts;
      parts.local.port = local_port;
      parts.peer.host = server->kernel->ip_addr();
      parts.peer.port = peer_port;
      Result<SessionRef> sess = cudp->Open(*ca, parts);
      ASSERT_TRUE(sess.ok());
      out = *sess;
    });
    return out;
  }

  void Send(const std::vector<uint8_t>& payload, uint16_t local_port = 1234) {
    SessionRef sess = OpenClientSession(local_port);
    RunIn(*client->kernel, [&] {
      Message msg = Message::FromBytes(payload);
      EXPECT_TRUE(sess->Push(msg).ok());
    });
  }

  std::unique_ptr<Internet> net;
  HostStack* client = nullptr;
  HostStack* server = nullptr;
  UdpProtocol* cudp = nullptr;
  UdpProtocol* sudp = nullptr;
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
};

TEST_F(UdpFixture, DatagramDelivered) {
  Send(PatternBytes(64));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(64));
}

TEST_F(UdpFixture, EchoReplyReturnsToClientPort) {
  RunIn(*server->kernel, [&] {
    sa->on_receive = [&](Message& msg, Session* lls) {
      ASSERT_NE(lls, nullptr);
      Message reply = msg;  // echo the payload back
      EXPECT_TRUE(lls->Push(reply).ok());
    };
  });
  Send(PatternBytes(48, 2));
  net->RunAll();
  ASSERT_EQ(ca->received.size(), 1u);
  EXPECT_EQ(ca->received[0], PatternBytes(48, 2));
}

TEST_F(UdpFixture, LargeDatagramRidesIpFragmentation) {
  Send(PatternBytes(16384, 5));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(16384, 5));
  EXPECT_GT(client->ip->stats().fragments_sent, 10u);
}

TEST_F(UdpFixture, WrongPortDropped) {
  SessionRef sess;
  RunIn(*client->kernel, [&] {
    ParticipantSet parts;
    parts.local.port = 1234;
    parts.peer.host = server->kernel->ip_addr();
    parts.peer.port = 99;  // nothing bound there
    Result<SessionRef> r = cudp->Open(*ca, parts);
    ASSERT_TRUE(r.ok());
    sess = *r;
    Message msg(10);
    EXPECT_TRUE(sess->Push(msg).ok());
  });
  net->RunAll();
  EXPECT_EQ(sa->received.size(), 0u);
}

TEST_F(UdpFixture, TwoClientsDemuxToDistinctSessions) {
  Send(PatternBytes(10, 1), 1111);
  Send(PatternBytes(10, 2), 2222);
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 2u);
  // Two passive sessions were created, one per (peer, port) pair.
  EXPECT_EQ(sa->accepted.size(), 2u);
  EXPECT_NE(sa->accepted[0].get(), sa->accepted[1].get());
}

TEST_F(UdpFixture, ChecksumCoversPayload) {
  // Send a raw UDP packet with a bad checksum via IP directly; the receiver
  // must reject it.
  RunIn(*client->kernel, [&] {
    ParticipantSet parts;
    parts.local.ip_proto = kIpProtoUdp;
    parts.peer.host = server->kernel->ip_addr();
    Result<SessionRef> ipsess = client->ip->Open(*ca, parts);
    ASSERT_TRUE(ipsess.ok());
    // UDP header: src 1234, dst 7, len 12, checksum 0xDEAD (wrong).
    std::vector<uint8_t> pkt = {0x04, 0xD2, 0x00, 0x07, 0x00, 0x0C,
                                0xDE, 0xAD, 1,    2,    3,    4};
    Message msg = Message::FromBytes(pkt);
    EXPECT_TRUE((*ipsess)->Push(msg).ok());
  });
  net->RunAll();
  EXPECT_EQ(sa->received.size(), 0u);
  EXPECT_EQ(sudp->checksum_failures(), 1u);
}

TEST_F(UdpFixture, ZeroChecksumAcceptedWhenSenderDisablesIt) {
  RunIn(*client->kernel, [&] { cudp->set_checksum_enabled(false); });
  Send(PatternBytes(20, 3));
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(20, 3));
}

TEST_F(UdpFixture, SessionControlOps) {
  SessionRef sess = OpenClientSession(4321, 7);
  RunIn(*client->kernel, [&] {
    ControlArgs args;
    EXPECT_TRUE(sess->Control(ControlOp::kGetMyPort, args).ok());
    EXPECT_EQ(args.u64, 4321u);
    EXPECT_TRUE(sess->Control(ControlOp::kGetPeerPort, args).ok());
    EXPECT_EQ(args.u64, 7u);
    EXPECT_TRUE(sess->Control(ControlOp::kGetPeerHost, args).ok());
    EXPECT_EQ(args.ip, IpAddr(10, 0, 1, 2));
    EXPECT_TRUE(sess->Control(ControlOp::kGetMaxPacket, args).ok());
    EXPECT_EQ(args.u64, 65515u - 8u);
  });
}

TEST_F(UdpFixture, UdpAcrossRouter) {
  auto rnet = Internet::TwoSegments();
  auto& rclient = rnet->host("client");
  auto& rserver = rnet->host("server");
  UdpProtocol* rcudp = nullptr;
  UdpProtocol* rsudp = nullptr;
  TestAnchor* rca = nullptr;
  TestAnchor* rsa = nullptr;
  RunIn(*rclient.kernel, [&] {
    rcudp = &rclient.kernel->Emplace<UdpProtocol>(*rclient.kernel, rclient.ip);
    rca = &rclient.kernel->Emplace<TestAnchor>(*rclient.kernel);
  });
  RunIn(*rserver.kernel, [&] {
    rsudp = &rserver.kernel->Emplace<UdpProtocol>(*rserver.kernel, rserver.ip);
    rsa = &rserver.kernel->Emplace<TestAnchor>(*rserver.kernel);
    ParticipantSet enable;
    enable.local.port = 7;
    EXPECT_TRUE(rsudp->OpenEnable(*rsa, enable).ok());
  });
  RunIn(*rclient.kernel, [&] {
    ParticipantSet parts;
    parts.local.port = 5555;
    parts.peer.host = rserver.kernel->ip_addr();
    parts.peer.port = 7;
    Result<SessionRef> sess = rcudp->Open(*rca, parts);
    ASSERT_TRUE(sess.ok());
    Message msg = Message::FromBytes(PatternBytes(2000, 8));  // fragments too
    EXPECT_TRUE((*sess)->Push(msg).ok());
  });
  rnet->RunAll();
  ASSERT_EQ(rsa->received.size(), 1u);
  EXPECT_EQ(rsa->received[0], PatternBytes(2000, 8));
}

// --- ICMP --------------------------------------------------------------------

TEST(IcmpTest, PingSameSegment) {
  auto net = Internet::TwoHosts();
  auto& client = net->host("client");
  auto& server = net->host("server");
  IcmpProtocol* cicmp = nullptr;
  RunIn(*client.kernel,
        [&] { cicmp = &client.kernel->Emplace<IcmpProtocol>(*client.kernel, client.ip); });
  IcmpProtocol* sicmp = nullptr;
  RunIn(*server.kernel,
        [&] { sicmp = &server.kernel->Emplace<IcmpProtocol>(*server.kernel, server.ip); });

  Result<SimTime> rtt = ErrStatus(StatusCode::kError);
  RunIn(*client.kernel, [&] {
    cicmp->Ping(IpAddr(10, 0, 1, 2), 56, [&](Result<SimTime> r) { rtt = r; });
  });
  net->RunAll();
  ASSERT_TRUE(rtt.ok());
  EXPECT_GT(*rtt, 0);
  EXPECT_LT(*rtt, Msec(5));
  EXPECT_EQ(sicmp->echoes_answered(), 1u);
}

TEST(IcmpTest, PingAcrossRouter) {
  auto net = Internet::TwoSegments();
  auto& client = net->host("client");
  auto& server = net->host("server");
  IcmpProtocol* cicmp = nullptr;
  RunIn(*client.kernel,
        [&] { cicmp = &client.kernel->Emplace<IcmpProtocol>(*client.kernel, client.ip); });
  RunIn(*server.kernel,
        [&] { server.kernel->Emplace<IcmpProtocol>(*server.kernel, server.ip); });

  Result<SimTime> rtt = ErrStatus(StatusCode::kError);
  RunIn(*client.kernel, [&] {
    cicmp->Ping(IpAddr(10, 0, 2, 1), 56, [&](Result<SimTime> r) { rtt = r; });
  });
  net->RunAll();
  ASSERT_TRUE(rtt.ok());
}

TEST(IcmpTest, PingUnreachableTimesOut) {
  auto net = Internet::TwoHosts();
  auto& client = net->host("client");
  IcmpProtocol* cicmp = nullptr;
  RunIn(*client.kernel,
        [&] { cicmp = &client.kernel->Emplace<IcmpProtocol>(*client.kernel, client.ip); });
  // Host 10.0.1.3 has an ARP entry (warm) but no machine behind it.
  RunIn(*client.kernel, [&] {
    ControlArgs args;
    args.ip = IpAddr(10, 0, 1, 3);
    args.eth = EthAddr::FromIndex(99);
    (void)client.arp->Control(ControlOp::kAddResolveEntry, args);
  });
  Result<SimTime> rtt = OkStatus();
  RunIn(*client.kernel, [&] {
    cicmp->Ping(IpAddr(10, 0, 1, 3), 56, [&](Result<SimTime> r) { rtt = r; });
  });
  net->RunAll();
  ASSERT_FALSE(rtt.ok());
  EXPECT_EQ(rtt.status().code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace xk
