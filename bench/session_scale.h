// session_scale: does the object layer survive 10^5..10^6 live sessions?
//
// The paper's session concept makes per-connection state explicit; this
// workload measures what that costs at datacenter connection counts. Two
// hosts, UDP stacks. The client opens N sessions (distinct (local port,
// server port) pairs) and the server pre-opens the N matching sessions, so
// both actively hold N entries in their DemuxMaps and N slots in their
// SlabPools without pushing N warmup datagrams through the wire. A fixed
// number of echo calls, strided across the session space, then measures the
// per-call cost with the full population resident -- the flat-ns/call claim
// is that this does not depend on N. Finally both protocols get an idle
// timeout and the sim drains: the sweep timer must evict every session
// (nothing else references them), which is the reclamation claim.
//
// Soak mode (cycles > 1) repeats open -> drain; the slab high-water from
// cycle 1 must satisfy every later cycle, so the pool capacity -- and the
// process RSS it dominates -- plateaus instead of growing with total
// sessions ever created.
//
// Determinism: every metric except the *_wall_* and rss_* fields is
// simulated (charged costs, evictions, map geometry) and byte-identical at
// any --engine-threads width; the host-side fields are emitted as
// host_metrics so --stable runs omit them.

#ifndef XK_BENCH_SESSION_SCALE_H_
#define XK_BENCH_SESSION_SCALE_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/app/anchor.h"
#include "src/app/stacks.h"
#include "src/proto/topology.h"
#include "src/proto/udp.h"
#include "src/stat/histogram.h"

namespace xk {

struct SessionScaleSpec {
  size_t sessions = 1000;  // live sessions per side
  int calls = 512;         // measured echoes, strided across the population
  int cycles = 1;          // >1 = churn soak: repeat open -> evict
  SimTime idle_timeout = Msec(5);
};

struct SessionScaleBench {
  size_t sessions = 0;
  int cycles = 0;
  int completed = 0;  // echoes that came back
  // Charged (simulated) client+server CPU per measured call.
  double sim_cpu_ns_per_call = 0;
  uint64_t client_evicted = 0;
  uint64_t server_evicted = 0;
  size_t client_live_peak = 0;
  size_t client_live_after = 0;  // after the final drain; 0 = full reclamation
  size_t server_live_after = 0;
  size_t client_slots = 0;       // slab capacity after the last cycle
  size_t client_high_water = 0;  // peak concurrently-live sessions ever
  size_t map_capacity_peak = 0;  // client active_ DemuxMap geometry at peak
  size_t map_tombstones_after = 0;
  size_t map_max_probe_peak = 0;
  uint64_t events_fired = 0;
  SimTime elapsed = 0;  // simulated time consumed by the whole job
  Histogram rtt;
  // Host-side (wall-clock / process) observations -- NOT deterministic.
  double setup_wall_ms = 0;      // opening both populations, last cycle
  double call_wall_ns = 0;       // steady state: same sample, caches warm
  double call_wall_cold_ns = 0;  // first touch of each sampled session
  double rss_mb_after_setup = 0;
  double rss_mb_after_drain = 0;
  double rss_mb_first_cycle = 0;  // after cycle 1's drain (soak plateau base)
};

namespace session_scale_internal {

// Current process resident set in MB (Linux /proc; 0 where unavailable).
inline double ReadRssMb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  double kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kb / 1024.0;
#else
  return 0;
#endif
}

}  // namespace session_scale_internal

inline SessionScaleBench MeasureSessionScale(const SessionScaleSpec& spec) {
  using Clock = std::chrono::steady_clock;
  auto net = Internet::TwoHosts(HostEnv::kXKernel);
  auto& ch = net->host("client");
  auto& sh = net->host("server");
  UdpProtocol* cudp = BuildUdp(ch);
  UdpProtocol* sudp = BuildUdp(sh);
  // Checksums walk the payload per datagram; this workload measures session
  // residency, not byte costs.
  cudp->set_checksum_enabled(false);
  sudp->set_checksum_enabled(false);

  EchoAnchor* client = nullptr;
  EchoAnchor* server = nullptr;
  ch.kernel->RunTask(net->events().now(), [&] {
    client = &ch.kernel->Emplace<EchoAnchor>(*ch.kernel, /*server_role=*/false);
  });
  sh.kernel->RunTask(net->events().now(), [&] {
    server = &sh.kernel->Emplace<EchoAnchor>(*sh.kernel, /*server_role=*/true);
  });

  // Port plan: local ports cycle 1..60000, server ports start at 20000 and
  // step every 60000 sessions, so every (peer port, local port) pair -- and
  // therefore every demux key -- is distinct up to ~10^6 sessions per side.
  constexpr size_t kLocalPorts = 60000;
  auto local_port = [](size_t i) { return static_cast<uint16_t>(1 + i % kLocalPorts); };
  auto server_port = [](size_t i) { return static_cast<uint16_t>(20000 + i / kLocalPorts); };

  SessionScaleBench out;
  out.sessions = spec.sessions;
  out.cycles = spec.cycles;
  const SimTime sim_start = net->events().now();

  std::vector<SessionRef> csess;
  std::vector<SessionRef> ssess;
  ControlArgs args;
  for (int cycle = 0; cycle < spec.cycles; ++cycle) {
    // --- build the population (batched tasks: Open charges sim CPU) ----------
    const auto setup_t0 = Clock::now();
    csess.assign(spec.sessions, nullptr);
    ssess.assign(spec.sessions, nullptr);
    constexpr size_t kBatch = 8192;
    for (size_t base = 0; base < spec.sessions; base += kBatch) {
      const size_t end = std::min(base + kBatch, spec.sessions);
      ch.kernel->RunTask(net->events().now(), [&, base, end] {
        for (size_t i = base; i < end; ++i) {
          ParticipantSet parts;
          parts.local.port = local_port(i);
          parts.peer.host = sh.kernel->ip_addr();
          parts.peer.port = server_port(i);
          Result<SessionRef> r = cudp->Open(*client, parts);
          if (r.ok()) {
            csess[i] = *r;
          }
        }
      });
      sh.kernel->RunTask(net->events().now(), [&, base, end] {
        for (size_t i = base; i < end; ++i) {
          // The mirror session: the server "accepts" the peer before any
          // datagram arrives, exactly the state a passive demux would build.
          ParticipantSet parts;
          parts.local.port = server_port(i);
          parts.peer.host = ch.kernel->ip_addr();
          parts.peer.port = local_port(i);
          Result<SessionRef> r = sudp->Open(*server, parts);
          if (r.ok()) {
            ssess[i] = *r;
          }
        }
      });
    }
    out.setup_wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - setup_t0).count();
    out.rss_mb_after_setup = session_scale_internal::ReadRssMb();
    out.client_live_peak = std::max(out.client_live_peak, cudp->live_sessions());
    out.map_capacity_peak = std::max(out.map_capacity_peak, cudp->active_map().capacity());
    out.map_max_probe_peak =
        std::max(out.map_max_probe_peak, cudp->active_map().MaxProbeLength());

    // --- measured calls with the full population resident (first cycle) -----
    if (cycle == 0 && spec.calls > 0 && spec.sessions > 0) {
      // One unmeasured echo first: it advances the event queue to the kernels'
      // charged clocks, so no recorded RTT absorbs the setup's CPU-time skew.
      ch.kernel->RunTask(net->events().now(), [&] {
        client->Send(csess[0], Message(64), [](Result<Message>) {});
      });
      net->RunAll();
      const SimTime busy0 = ch.kernel->cpu().total_busy() + sh.kernel->cpu().total_busy();
      const size_t stride = std::max<size_t>(1, spec.sessions / spec.calls);
      // Four passes over the same strided sample. Pass 0 touches each sampled
      // session for the first time (cold: the population's memory footprint
      // is the cost); passes 1-3 are the steady state -- the flat-ns/call
      // claim is that a hot session's cost does not depend on how many cold
      // sessions are resident around it. The warm figure is the best pass
      // (standard microbenchmark practice: the minimum is the run least
      // disturbed by the host).
      constexpr int kPasses = 4;
      for (int pass = 0; pass < kPasses; ++pass) {
        const auto pass_t0 = Clock::now();
        for (int c = 0; c < spec.calls; ++c) {
          const SessionRef& sess = csess[(static_cast<size_t>(c) * stride) % spec.sessions];
          bool done_flag = false;
          ch.kernel->RunTask(net->events().now(), [&] {
            // The kernel-local clock on both ends: the engine-invariant
            // simulated RTT (the global queue time is not comparable across
            // engine widths).
            const SimTime t0 = ch.kernel->now();
            client->Send(sess, Message(64), [&, t0](Result<Message> r) {
              done_flag = r.ok();
              out.rtt.Record(ch.kernel->now() - t0);
            });
          });
          net->RunAll();
          if (done_flag) {
            ++out.completed;
          }
        }
        const double pass_ns =
            std::chrono::duration<double, std::nano>(Clock::now() - pass_t0).count() /
            spec.calls;
        if (pass == 0) {
          out.call_wall_cold_ns = pass_ns;
        } else if (out.call_wall_ns == 0 || pass_ns < out.call_wall_ns) {
          out.call_wall_ns = pass_ns;
        }
      }
      const SimTime busy1 = ch.kernel->cpu().total_busy() + sh.kernel->cpu().total_busy();
      out.sim_cpu_ns_per_call = static_cast<double>(busy1 - busy0) / (kPasses * spec.calls);
    }

    // --- drain: drop our references, arm the idle sweep, run to quiescence --
    csess.clear();
    ssess.clear();
    ch.kernel->RunTask(net->events().now(), [&] {
      args.u64 = static_cast<uint64_t>(spec.idle_timeout);
      (void)cudp->Control(ControlOp::kSetIdleTimeout, args);
    });
    sh.kernel->RunTask(net->events().now(), [&] {
      args.u64 = static_cast<uint64_t>(spec.idle_timeout);
      (void)sudp->Control(ControlOp::kSetIdleTimeout, args);
    });
    net->RunAll();
    // Disarm before the next cycle's build so no sweep lands mid-setup.
    ch.kernel->RunTask(net->events().now(), [&] {
      args.u64 = 0;
      (void)cudp->Control(ControlOp::kSetIdleTimeout, args);
    });
    sh.kernel->RunTask(net->events().now(), [&] {
      args.u64 = 0;
      (void)sudp->Control(ControlOp::kSetIdleTimeout, args);
    });
    if (cycle == 0) {
      out.rss_mb_first_cycle = session_scale_internal::ReadRssMb();
    }
  }

  out.client_evicted = cudp->idle_evictions();
  out.server_evicted = sudp->idle_evictions();
  out.client_live_after = cudp->live_sessions();
  out.server_live_after = sudp->live_sessions();
  out.client_slots = cudp->session_slots();
  out.client_high_water = cudp->session_high_water();
  out.map_tombstones_after = cudp->active_map().tombstones();
  out.events_fired = net->events_fired();
  out.elapsed = net->events().now() - sim_start;
  out.rss_mb_after_drain = session_scale_internal::ReadRssMb();
  return out;
}

}  // namespace xk

#endif  // XK_BENCH_SESSION_SCALE_H_
