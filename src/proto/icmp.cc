#include "src/proto/icmp.h"

#include "src/core/wire.h"

namespace xk {

namespace {
constexpr uint8_t kEchoReply = 0;
constexpr uint8_t kEchoRequest = 8;
}  // namespace

IcmpProtocol::IcmpProtocol(Kernel& kernel, Protocol* ip) : Protocol(kernel, "icmp", {ip}) {
  ParticipantSet enable;
  enable.local.ip_proto = kIpProtoIcmp;
  (void)lower(0)->OpenEnable(*this, enable);
}

void IcmpProtocol::Ping(IpAddr dest, size_t payload_len, PingCallback done) {
  ParticipantSet parts;
  parts.local.ip_proto = kIpProtoIcmp;
  parts.peer.host = dest;
  Result<SessionRef> sess = lower(0)->Open(*this, parts);
  if (!sess.ok()) {
    done(sess.status());
    return;
  }
  const uint16_t id = next_id_++;
  uint8_t hdr[kHeaderSize];
  WireWriter w(hdr);
  w.PutU8(kEchoRequest);
  w.PutU8(0);
  w.PutU16(0);  // checksum unused: IP validates its header; payload is simulated
  w.PutU16(id);
  w.PutU16(0);  // seq
  Message msg(payload_len);
  kernel().ChargeHdrStore(kHeaderSize);
  msg.PushHeader(hdr);

  Pending& p = pending_[id];
  p.sent_at = kernel().cpu().now();
  p.done = std::move(done);
  p.timer = kernel().SetTimer(timeout_, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    PingCallback cb = std::move(it->second.done);
    pending_.erase(it);
    cb(ErrStatus(StatusCode::kTimeout));
  });
  (void)(*sess)->Push(msg);
}

Status IcmpProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t hdr[kHeaderSize];
  if (!msg.PopHeader(hdr)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(hdr);
  const uint8_t type = r.GetU8();
  r.Skip(3);
  const uint16_t id = r.GetU16();

  if (type == kEchoRequest) {
    // Reply through the session the request arrived on (its peer is the
    // requester).
    if (lls == nullptr) {
      return ErrStatus(StatusCode::kInvalidArgument);
    }
    uint8_t reply_hdr[kHeaderSize] = {kEchoReply, 0, 0, 0,
                                      static_cast<uint8_t>(id >> 8), static_cast<uint8_t>(id),
                                      0, 0};
    kernel().ChargeHdrStore(kHeaderSize);
    msg.PushHeader(reply_hdr);
    ++echoes_answered_;
    return lls->Push(msg);
  }
  if (type == kEchoReply) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return OkStatus();  // late reply
    }
    Pending p = std::move(it->second);
    pending_.erase(it);
    kernel().CancelTimer(p.timer);
    p.done(kernel().cpu().now() - p.sent_at);
    return OkStatus();
  }
  return OkStatus();
}

}  // namespace xk
