
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/kernel.cc" "src/CMakeFiles/xk_core.dir/core/kernel.cc.o" "gcc" "src/CMakeFiles/xk_core.dir/core/kernel.cc.o.d"
  "/root/repo/src/core/message.cc" "src/CMakeFiles/xk_core.dir/core/message.cc.o" "gcc" "src/CMakeFiles/xk_core.dir/core/message.cc.o.d"
  "/root/repo/src/core/participant.cc" "src/CMakeFiles/xk_core.dir/core/participant.cc.o" "gcc" "src/CMakeFiles/xk_core.dir/core/participant.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/CMakeFiles/xk_core.dir/core/protocol.cc.o" "gcc" "src/CMakeFiles/xk_core.dir/core/protocol.cc.o.d"
  "/root/repo/src/core/types.cc" "src/CMakeFiles/xk_core.dir/core/types.cc.o" "gcc" "src/CMakeFiles/xk_core.dir/core/types.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/xk_core.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/xk_core.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/xk_core.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/xk_core.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/CMakeFiles/xk_core.dir/sim/link.cc.o" "gcc" "src/CMakeFiles/xk_core.dir/sim/link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
