// Tests for IP: delivery, fragmentation/reassembly, routing, forwarding.

#include "src/proto/ip.h"

#include <gtest/gtest.h>

#include "src/proto/topology.h"
#include "tests/test_util.h"

namespace xk {
namespace {

constexpr IpProtoNum kTestProto = 200;

// Opens an IP session from `from`'s anchor toward `to_addr` and pushes
// `payload`; returns the anchor recording deliveries at the receiver.
struct IpPair {
  explicit IpPair(Internet& the_net) : net(the_net) {
    client = &net.host("client");
    server = &net.host("server");
    RunIn(*client->kernel,
          [&] { ca = &client->kernel->Emplace<TestAnchor>(*client->kernel); });
    RunIn(*server->kernel, [&] {
      sa = &server->kernel->Emplace<TestAnchor>(*server->kernel);
      ParticipantSet enable;
      enable.local.ip_proto = kTestProto;
      EXPECT_TRUE(server->ip->OpenEnable(*sa, enable).ok());
    });
  }

  void Send(std::vector<uint8_t> payload) {
    RunIn(*client->kernel, [&] {
      ParticipantSet parts;
      parts.local.ip_proto = kTestProto;
      parts.peer.host = server->kernel->ip_addr();
      Result<SessionRef> sess = client->ip->Open(*ca, parts);
      ASSERT_TRUE(sess.ok());
      Message msg = Message::FromBytes(payload);
      EXPECT_TRUE((*sess)->Push(msg).ok());
    });
  }

  Internet& net;
  HostStack* client;
  HostStack* server;
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
};

TEST(IpTest, SmallDatagramDelivered) {
  auto net = Internet::TwoHosts();
  IpPair p(*net);
  p.Send(PatternBytes(100));
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_EQ(p.sa->received[0], PatternBytes(100));
  EXPECT_EQ(p.server->ip->stats().reassemblies_completed, 0u);
}

TEST(IpTest, EmptyPayloadDelivered) {
  auto net = Internet::TwoHosts();
  IpPair p(*net);
  p.Send({});
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_TRUE(p.sa->received[0].empty());
}

TEST(IpTest, MinFramePaddingStripped) {
  // A 1-byte payload rides a padded 64-byte frame; IP's length field must
  // restore the true size.
  auto net = Internet::TwoHosts();
  IpPair p(*net);
  p.Send(PatternBytes(1));
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_EQ(p.sa->received[0].size(), 1u);
}

TEST(IpTest, LargeDatagramFragmentsAndReassembles) {
  auto net = Internet::TwoHosts();
  IpPair p(*net);
  p.Send(PatternBytes(8000, 3));
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_EQ(p.sa->received[0], PatternBytes(8000, 3));
  EXPECT_GT(p.client->ip->stats().fragments_sent, 5u);  // ceil(8000/1480) = 6
  EXPECT_EQ(p.server->ip->stats().reassemblies_completed, 1u);
}

TEST(IpTest, MaxSizeDatagram) {
  auto net = Internet::TwoHosts();
  IpPair p(*net);
  p.Send(PatternBytes(65515, 1));
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_EQ(p.sa->received[0].size(), 65515u);
}

TEST(IpTest, OversizeDatagramRejected) {
  auto net = Internet::TwoHosts();
  IpPair p(*net);
  RunIn(*p.client->kernel, [&] {
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = p.server->kernel->ip_addr();
    Result<SessionRef> sess = p.client->ip->Open(*p.ca, parts);
    ASSERT_TRUE(sess.ok());
    Message msg(65516);
    EXPECT_EQ((*sess)->Push(msg).code(), StatusCode::kTooBig);
  });
}

TEST(IpTest, LostFragmentTimesOutReassembly) {
  auto net = Internet::TwoHosts();
  // Drop the 3rd frame (a middle fragment).
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 2 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  IpPair p(*net);
  p.Send(PatternBytes(6000));
  net->RunAll();
  EXPECT_EQ(p.sa->received.size(), 0u);  // IP is unreliable: nothing delivered
  EXPECT_EQ(p.server->ip->stats().reassembly_timeouts, 1u);
}

TEST(IpTest, DuplicatedFragmentStillReassemblesOnce) {
  auto net = Internet::TwoHosts();
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 1 ? LinkFault::kDuplicate : LinkFault::kDeliver;
  });
  IpPair p(*net);
  p.Send(PatternBytes(4000, 7));
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_EQ(p.sa->received[0], PatternBytes(4000, 7));
  EXPECT_EQ(p.server->ip->stats().reassemblies_completed, 1u);
}

TEST(IpTest, ReorderedFragmentsReassemble) {
  auto net = Internet::TwoHosts();
  // Delay the first fragment behind the second by duplicating... instead use
  // interleave: drop nothing, but IP must handle out-of-order offsets anyway
  // because the reassembly map is keyed by offset. Send two datagrams and
  // interleave their fragments via two sessions is equivalent; here we rely
  // on the contiguity check with a deliberately scrambled arrival produced by
  // reversing delivery order of two fragments.
  IpPair p(*net);
  p.Send(PatternBytes(2900, 5));  // exactly 2 fragments (1480 + 1420)
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_EQ(p.sa->received[0], PatternBytes(2900, 5));
}

TEST(IpTest, InterleavedDatagramsReassembleIndependently) {
  auto net = Internet::TwoHosts();
  IpPair p(*net);
  p.Send(PatternBytes(3000, 1));
  p.Send(PatternBytes(3000, 2));
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 2u);
  EXPECT_EQ(p.sa->received[0], PatternBytes(3000, 1));
  EXPECT_EQ(p.sa->received[1], PatternBytes(3000, 2));
}

TEST(IpTest, CorruptedHeaderDropped) {
  auto net = Internet::TwoHosts();
  IpPair p(*net);
  // Send a hand-built datagram with a broken checksum through ETH directly.
  RunIn(*p.client->kernel, [&] {
    ParticipantSet parts;
    parts.local.eth_type = kEthTypeIp;
    parts.peer.eth = p.server->eth->addr();
    Result<SessionRef> sess = p.client->eth->Open(*p.ca, parts);
    ASSERT_TRUE(sess.ok());
    std::vector<uint8_t> bogus(40, 0xAA);
    bogus[0] = 0x45;  // right version, wrong checksum
    Message msg = Message::FromBytes(bogus);
    EXPECT_TRUE((*sess)->Push(msg).ok());
  });
  net->RunAll();
  EXPECT_EQ(p.sa->received.size(), 0u);
  EXPECT_EQ(p.server->ip->stats().checksum_failures, 1u);
}

TEST(IpTest, RoutedDeliveryAcrossSegments) {
  auto net = Internet::TwoSegments();
  IpPair p(*net);
  p.Send(PatternBytes(500, 4));
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_EQ(p.sa->received[0], PatternBytes(500, 4));
  EXPECT_EQ(net->host("router").ip->stats().forwards, 1u);
}

TEST(IpTest, RoutedFragmentsForwardedWithoutReassembly) {
  auto net = Internet::TwoSegments();
  IpPair p(*net);
  p.Send(PatternBytes(5000, 6));
  net->RunAll();
  ASSERT_EQ(p.sa->received.size(), 1u);
  EXPECT_EQ(p.sa->received[0], PatternBytes(5000, 6));
  auto& router_stats = net->host("router").ip->stats();
  EXPECT_EQ(router_stats.forwards, 4u);  // ceil(5000/1480)
  EXPECT_EQ(router_stats.reassemblies_completed, 0u);
}

TEST(IpTest, ReplyAcrossSegments) {
  auto net = Internet::TwoSegments();
  IpPair p(*net);
  RunIn(*p.server->kernel, [&] {
    p.sa->on_receive = [&](Message&, Session* lls) {
      ASSERT_NE(lls, nullptr);
      Message reply = Message::FromBytes(PatternBytes(80, 9));
      EXPECT_TRUE(lls->Push(reply).ok());
    };
  });
  p.Send(PatternBytes(100));
  net->RunAll();
  ASSERT_EQ(p.ca->received.size(), 1u);
  EXPECT_EQ(p.ca->received[0], PatternBytes(80, 9));
}

TEST(IpTest, NoRouteIsUnreachable) {
  auto net = std::make_unique<Internet>();
  const int seg = net->AddSegment();
  net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg, IpAddr(10, 0, 1, 2));
  net->WarmArp();
  auto& client = net->host("client");
  RunIn(*client.kernel, [&] {
    auto& ca = client.kernel->Emplace<TestAnchor>(*client.kernel);
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = IpAddr(99, 9, 9, 9);  // off-subnet, no gateway
    Result<SessionRef> sess = client.ip->Open(ca, parts);
    EXPECT_FALSE(sess.ok());
    EXPECT_EQ(sess.status().code(), StatusCode::kUnreachable);
  });
}

TEST(IpTest, TtlExpiresInRoutingLoop) {
  // Two routers pointing at each other for an unknown subnet: the datagram
  // must die of TTL, not live forever.
  auto net = std::make_unique<Internet>();
  const int seg_a = net->AddSegment();
  const int seg_b = net->AddSegment();
  net->AddHost("client", seg_a, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg_b, IpAddr(10, 0, 2, 1));  // unused; exists for topology
  auto& r1 = net->AddRouter("r1", {{seg_a, IpAddr(10, 0, 1, 254)}, {seg_b, IpAddr(10, 0, 2, 254)}});
  auto& r2 = net->AddRouter("r2", {{seg_a, IpAddr(10, 0, 1, 253)}, {seg_b, IpAddr(10, 0, 2, 253)}});
  net->WarmArp();
  net->SetDefaultGateway("client", IpAddr(10, 0, 1, 254));
  RunIn(*r1.kernel, [&] { r1.ip->SetDefaultGateway(IpAddr(10, 0, 2, 253)); });
  RunIn(*r2.kernel, [&] { r2.ip->SetDefaultGateway(IpAddr(10, 0, 1, 254)); });

  auto& client = net->host("client");
  RunIn(*client.kernel, [&] {
    auto& ca = client.kernel->Emplace<TestAnchor>(*client.kernel);
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = IpAddr(10, 0, 77, 1);  // subnet known to nobody
    Result<SessionRef> sess = client.ip->Open(ca, parts);
    ASSERT_TRUE(sess.ok());
    Message msg(16);
    EXPECT_TRUE((*sess)->Push(msg).ok());
  });
  net->RunAll();
  EXPECT_EQ(r1.ip->stats().ttl_drops + r2.ip->stats().ttl_drops, 1u);
  const uint64_t total_forwards = r1.ip->stats().forwards + r2.ip->stats().forwards;
  EXPECT_GE(total_forwards, 60u);  // TTL 64 minus the edges
  EXPECT_LE(total_forwards, 64u);
}

TEST(IpTest, ControlOps) {
  auto net = Internet::TwoHosts();
  auto& client = net->host("client");
  RunIn(*client.kernel, [&] {
    ControlArgs args;
    EXPECT_TRUE(client.ip->Control(ControlOp::kGetMaxPacket, args).ok());
    EXPECT_EQ(args.u64, 65515u);
    EXPECT_TRUE(client.ip->Control(ControlOp::kGetOptPacket, args).ok());
    EXPECT_EQ(args.u64, 1480u);
    EXPECT_TRUE(client.ip->Control(ControlOp::kGetMyHost, args).ok());
    EXPECT_EQ(args.ip, IpAddr(10, 0, 1, 1));

    auto& ca = client.kernel->Emplace<TestAnchor>(*client.kernel);
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = IpAddr(10, 0, 1, 2);
    Result<SessionRef> sess = client.ip->Open(ca, parts);
    ASSERT_TRUE(sess.ok());
    EXPECT_TRUE((*sess)->Control(ControlOp::kGetPeerHost, args).ok());
    EXPECT_EQ(args.ip, IpAddr(10, 0, 1, 2));
    EXPECT_TRUE((*sess)->Control(ControlOp::kGetMyProto, args).ok());
    EXPECT_EQ(args.u64, kTestProto);
    // Unknown op forwards to the ETH session below.
    EXPECT_TRUE((*sess)->Control(ControlOp::kGetPeerHostEth, args).ok());
  });
}

TEST(IpTest, ColdCacheOpenAsyncResolvesFirst) {
  auto net = std::make_unique<Internet>();
  const int seg = net->AddSegment();
  net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg, IpAddr(10, 0, 1, 2));  // no WarmArp
  auto& client = net->host("client");
  auto& server = net->host("server");

  TestAnchor* sa = nullptr;
  RunIn(*server.kernel, [&] {
    sa = &server.kernel->Emplace<TestAnchor>(*server.kernel);
    ParticipantSet enable;
    enable.local.ip_proto = kTestProto;
    EXPECT_TRUE(server.ip->OpenEnable(*sa, enable).ok());
  });
  bool opened = false;
  RunIn(*client.kernel, [&] {
    auto& ca = client.kernel->Emplace<TestAnchor>(*client.kernel);
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = IpAddr(10, 0, 1, 2);
    // Synchronous open fails (cold cache)...
    EXPECT_EQ(client.ip->Open(ca, parts).status().code(), StatusCode::kUnreachable);
    // ...async open resolves and then delivers.
    client.ip->OpenAsync(ca, parts, [&](Result<SessionRef> r) {
      ASSERT_TRUE(r.ok());
      opened = true;
      Message msg = Message::FromBytes(PatternBytes(33));
      EXPECT_TRUE((*r)->Push(msg).ok());
    });
  });
  net->RunAll();
  EXPECT_TRUE(opened);
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(33));
}

}  // namespace
}  // namespace xk
