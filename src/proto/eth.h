// ETH: the Ethernet driver protocol.
//
// In the x-kernel, device drivers present the same uniform interface as any
// other protocol. ETH sessions are keyed by (peer station, ethernet type);
// open_enable registers a high-level protocol for a type. Push prepends the
// 14-byte Ethernet header and hands the flattened frame to the simulated
// controller; incoming frames arrive as interrupts (FrameArrived), are
// charged interrupt + copy costs, and are demultiplexed on the type field.
//
// ETH delivers 1500-byte packets to hosts on the same Ethernet (paper,
// Figure 2).

#ifndef XK_SRC_PROTO_ETH_H_
#define XK_SRC_PROTO_ETH_H_

#include <tuple>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/sim/link.h"

namespace xk {

class EthProtocol final : public Protocol, public FrameSink {
 public:
  static constexpr size_t kHeaderSize = 14;
  static constexpr size_t kMtu = 1500;

  // Attaches this host to `segment`. `addr` defaults to the kernel's
  // Ethernet address; routers with several interfaces pass distinct
  // addresses (and distinct `name`s, e.g. "eth0"/"eth1").
  EthProtocol(Kernel& kernel, EthernetSegment& segment,
              std::optional<EthAddr> addr = std::nullopt, std::string name = "eth");

  // Detaches the station so frames racing toward a crashed host are dropped
  // at the wire (segment down_drops), not delivered to a dead object.
  ~EthProtocol() override;

  // This interface's station address.
  EthAddr addr() const { return addr_; }

  // FrameSink: a frame has arrived from the wire (called at interrupt time).
  void FrameArrived(const EthFrame& frame) override;

  // FrameSink: the parallel engine routes deliveries to this host's queue.
  Kernel* sink_kernel() override { return &kernel(); }

  // --- statistics -------------------------------------------------------------
  uint64_t frames_out() const { return frames_out_; }
  uint64_t frames_in() const { return frames_in_; }

  void ExportCounters(const CounterEmit& emit) const override;

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 public:
  Status OpenDisable(Protocol& hlp, const ParticipantSet& parts) override;

 private:
  friend class EthSession;
  using Key = std::tuple<EthAddr, EthType>;  // (peer, type)

  // Transmits a fully-framed message (header already pushed) to the wire.
  void Transmit(Message& msg);

  EthernetSegment& segment_;
  EthAddr addr_;
  int attach_id_;
  DemuxMap<Key> active_;
  DemuxMap<EthType, Protocol*> passive_;
  uint64_t frames_out_ = 0;
  uint64_t frames_in_ = 0;
};

class EthSession final : public Session {
 public:
  EthSession(EthProtocol& owner, Protocol* hlp, EthAddr peer, EthType type);

  EthAddr peer() const { return peer_; }
  EthType type() const { return type_; }

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  EthProtocol& eth_;
  EthAddr peer_;
  EthType type_;
};

}  // namespace xk

#endif  // XK_SRC_PROTO_ETH_H_
