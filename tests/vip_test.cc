// Tests for the virtual protocols: VIP (Section 3.1), VIP_ADDR and VIP_SIZE
// (Section 4.3).

#include "src/proto/vip.h"

#include <gtest/gtest.h>

#include "src/proto/topology.h"
#include "src/proto/vip_size.h"
#include "tests/test_util.h"

namespace xk {
namespace {

constexpr IpProtoNum kTestProto = 210;

VipProtocol* AddVip(HostStack& h) {
  VipProtocol* vip = nullptr;
  RunIn(*h.kernel,
        [&] { vip = &h.kernel->Emplace<VipProtocol>(*h.kernel, h.eth, h.ip, h.arp); });
  return vip;
}

struct VipFixture : ::testing::Test {
  void SetUp() override {
    net = Internet::TwoHosts();
    client = &net->host("client");
    server = &net->host("server");
    cvip = AddVip(*client);
    svip = AddVip(*server);
    RunIn(*client->kernel, [&] { ca = &client->kernel->Emplace<TestAnchor>(*client->kernel); });
    RunIn(*server->kernel, [&] {
      sa = &server->kernel->Emplace<TestAnchor>(*server->kernel);
      ParticipantSet enable;
      enable.local.ip_proto = kTestProto;
      EXPECT_TRUE(svip->OpenEnable(*sa, enable).ok());
    });
  }

  SessionRef OpenToServer(uint64_t max_send) {
    SessionRef out;
    RunIn(*client->kernel, [&] {
      ca->max_send_size = max_send;
      ParticipantSet parts;
      parts.local.ip_proto = kTestProto;
      parts.peer.host = server->kernel->ip_addr();
      Result<SessionRef> sess = cvip->Open(*ca, parts);
      ASSERT_TRUE(sess.ok());
      out = *sess;
    });
    return out;
  }

  std::unique_ptr<Internet> net;
  HostStack* client = nullptr;
  HostStack* server = nullptr;
  VipProtocol* cvip = nullptr;
  VipProtocol* svip = nullptr;
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
};

TEST_F(VipFixture, LocalSmallSenderOpensEthOnly) {
  // An RPC-like client that fragments its own messages (max 1500) talking to
  // a local host: VIP must pick the raw Ethernet, not IP.
  SessionRef sess = OpenToServer(1500);
  auto* vs = static_cast<VipSession*>(sess.get());
  EXPECT_TRUE(vs->has_eth_path());
  EXPECT_FALSE(vs->has_ip_path());

  RunIn(*client->kernel, [&] {
    Message msg = Message::FromBytes(PatternBytes(200, 1));
    EXPECT_TRUE(sess->Push(msg).ok());
  });
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(200, 1));
  // No IP datagrams were involved.
  EXPECT_EQ(client->ip->stats().datagrams_sent, 0u);
}

TEST_F(VipFixture, LocalLargeSenderOpensBothAndSplitsBySize) {
  // A UDP-like client that may send huge messages: VIP opens both sessions
  // and picks per message.
  SessionRef sess = OpenToServer(UINT64_MAX);
  auto* vs = static_cast<VipSession*>(sess.get());
  EXPECT_TRUE(vs->has_eth_path());
  EXPECT_TRUE(vs->has_ip_path());

  RunIn(*client->kernel, [&] {
    Message small = Message::FromBytes(PatternBytes(100, 1));
    EXPECT_TRUE(sess->Push(small).ok());
    Message large = Message::FromBytes(PatternBytes(4000, 2));
    EXPECT_TRUE(sess->Push(large).ok());
  });
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 2u);
  EXPECT_EQ(sa->received[0], PatternBytes(100, 1));
  EXPECT_EQ(sa->received[1], PatternBytes(4000, 2));
  // Exactly the large one went via IP.
  EXPECT_EQ(client->ip->stats().datagrams_sent, 1u);
}

TEST_F(VipFixture, RemoteHostOpensIpOnly) {
  auto rnet = Internet::TwoSegments();
  auto& rc = rnet->host("client");
  auto& rs = rnet->host("server");
  VipProtocol* rcvip = AddVip(rc);
  VipProtocol* rsvip = AddVip(rs);
  TestAnchor* rca = nullptr;
  TestAnchor* rsa = nullptr;
  RunIn(*rc.kernel, [&] { rca = &rc.kernel->Emplace<TestAnchor>(*rc.kernel); });
  RunIn(*rs.kernel, [&] {
    rsa = &rs.kernel->Emplace<TestAnchor>(*rs.kernel);
    ParticipantSet enable;
    enable.local.ip_proto = kTestProto;
    EXPECT_TRUE(rsvip->OpenEnable(*rsa, enable).ok());
  });
  SessionRef sess;
  RunIn(*rc.kernel, [&] {
    rca->max_send_size = 1500;
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = rs.kernel->ip_addr();
    Result<SessionRef> r = rcvip->Open(*rca, parts);
    ASSERT_TRUE(r.ok());
    sess = *r;
  });
  auto* vs = static_cast<VipSession*>(sess.get());
  EXPECT_FALSE(vs->has_eth_path());  // ARP cannot resolve an off-link host
  EXPECT_TRUE(vs->has_ip_path());
  RunIn(*rc.kernel, [&] {
    Message msg = Message::FromBytes(PatternBytes(300, 3));
    EXPECT_TRUE(sess->Push(msg).ok());
  });
  rnet->RunAll();
  ASSERT_EQ(rsa->received.size(), 1u);
  EXPECT_EQ(rsa->received[0], PatternBytes(300, 3));
}

TEST_F(VipFixture, ReplyThroughPassiveVipSession) {
  RunIn(*server->kernel, [&] {
    sa->on_receive = [&](Message&, Session* lls) {
      ASSERT_NE(lls, nullptr);
      Message reply = Message::FromBytes(PatternBytes(60, 7));
      EXPECT_TRUE(lls->Push(reply).ok());
    };
  });
  SessionRef sess = OpenToServer(1500);
  RunIn(*client->kernel, [&] {
    Message msg = Message::FromBytes(PatternBytes(10));
    EXPECT_TRUE(sess->Push(msg).ok());
  });
  net->RunAll();
  ASSERT_EQ(ca->received.size(), 1u);
  EXPECT_EQ(ca->received[0], PatternBytes(60, 7));
}

TEST_F(VipFixture, EthTypeMappingIsReserved) {
  EXPECT_EQ(VipEthTypeFor(0), kEthTypeVipBase);
  EXPECT_EQ(VipEthTypeFor(255), kEthTypeVipBase + 255);
  // The mapped range collides with nothing we use.
  EXPECT_NE(VipEthTypeFor(kTestProto), kEthTypeIp);
  EXPECT_NE(VipEthTypeFor(kTestProto), kEthTypeArp);
}

TEST_F(VipFixture, ControlReflectsPaths) {
  SessionRef both = OpenToServer(UINT64_MAX);
  RunIn(*client->kernel, [&] {
    ControlArgs args;
    EXPECT_TRUE(both->Control(ControlOp::kGetMaxPacket, args).ok());
    EXPECT_EQ(args.u64, 65515u);  // IP path present
    EXPECT_TRUE(both->Control(ControlOp::kGetOptPacket, args).ok());
    EXPECT_EQ(args.u64, 1500u);  // eth path present
    EXPECT_TRUE(both->Control(ControlOp::kGetPeerHost, args).ok());
    EXPECT_EQ(args.ip, IpAddr(10, 0, 1, 2));
  });
}

TEST_F(VipFixture, OpenAsyncColdCacheDiscoversLocality) {
  // Build a cold-cache pair with VIP on both sides.
  auto cnet = std::make_unique<Internet>();
  const int seg = cnet->AddSegment();
  auto& cc = cnet->AddHost("client", seg, IpAddr(10, 0, 1, 1));
  auto& cs = cnet->AddHost("server", seg, IpAddr(10, 0, 1, 2));
  VipProtocol* ccvip = AddVip(cc);
  VipProtocol* csvip = AddVip(cs);
  TestAnchor* cca = nullptr;
  TestAnchor* csa = nullptr;
  RunIn(*cc.kernel, [&] { cca = &cc.kernel->Emplace<TestAnchor>(*cc.kernel); });
  RunIn(*cs.kernel, [&] {
    csa = &cs.kernel->Emplace<TestAnchor>(*cs.kernel);
    ParticipantSet enable;
    enable.local.ip_proto = kTestProto;
    EXPECT_TRUE(csvip->OpenEnable(*csa, enable).ok());
  });
  SessionRef opened;
  RunIn(*cc.kernel, [&] {
    cca->max_send_size = 1500;
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = IpAddr(10, 0, 1, 2);
    ccvip->OpenAsync(*cca, parts, [&](Result<SessionRef> r) {
      ASSERT_TRUE(r.ok());
      opened = *r;
    });
  });
  cnet->RunAll();
  ASSERT_NE(opened, nullptr);
  auto* vs = static_cast<VipSession*>(opened.get());
  EXPECT_TRUE(vs->has_eth_path());  // ARP resolved on the wire => local
  EXPECT_FALSE(vs->has_ip_path());
}

// --- VIP_ADDR / VIP_SIZE -----------------------------------------------------

struct VipSizeFixture : ::testing::Test {
  // Stack: anchor - VIP_SIZE - { VIP_ADDR, FRAGMENT-... } -- but FRAGMENT is
  // an RPC-layer protocol built later; here we test VIP_SIZE with two plain
  // paths: VIP_ADDR as small and a second VIP (IP semantics) as stand-in big
  // path. The real Figure 3(b) stack is exercised in the RPC integration
  // tests.
  void SetUp() override {
    net = Internet::TwoHosts();
    client = &net->host("client");
    server = &net->host("server");
  }
  std::unique_ptr<Internet> net;
  HostStack* client = nullptr;
  HostStack* server = nullptr;
};

TEST_F(VipSizeFixture, VipAddrReturnsLowerSessionDirectly) {
  VipAddrProtocol* va = nullptr;
  TestAnchor* ca = nullptr;
  RunIn(*client->kernel, [&] {
    va = &client->kernel->Emplace<VipAddrProtocol>(*client->kernel, client->eth, client->ip,
                                                   client->arp);
    ca = &client->kernel->Emplace<TestAnchor>(*client->kernel);
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = server->kernel->ip_addr();
    Result<SessionRef> sess = va->Open(*ca, parts);
    ASSERT_TRUE(sess.ok());
    // Local destination: the session is an ETH session whose owner is the
    // Ethernet protocol, not VIP_ADDR -- zero overhead after open.
    EXPECT_EQ(&(*sess)->owner(), static_cast<Protocol*>(client->eth));
    EXPECT_EQ((*sess)->hlp(), static_cast<Protocol*>(ca));
  });
}

TEST_F(VipSizeFixture, VipAddrPicksIpForRemote) {
  auto rnet = Internet::TwoSegments();
  auto& rc = rnet->host("client");
  RunIn(*rc.kernel, [&] {
    auto& va = rc.kernel->Emplace<VipAddrProtocol>(*rc.kernel, rc.eth, rc.ip, rc.arp);
    auto& ca = rc.kernel->Emplace<TestAnchor>(*rc.kernel);
    ParticipantSet parts;
    parts.local.ip_proto = kTestProto;
    parts.peer.host = rnet->host("server").kernel->ip_addr();
    Result<SessionRef> sess = va.Open(ca, parts);
    ASSERT_TRUE(sess.ok());
    EXPECT_EQ(&(*sess)->owner(), static_cast<Protocol*>(rc.ip));
  });
}

}  // namespace
}  // namespace xk
