// Reader + analyzer for the trace JSONL emitted by TraceSink (src/trace).
//
// Header-only and std-only so both the xktrace CLI and the tests can consume
// traces without linking anything beyond the standard library. The parser
// handles exactly the shape TraceSink writes: one flat JSON object per line
// whose values are either quoted strings or decimal integers.

#ifndef XK_SRC_TOOLS_TRACE_READER_H_
#define XK_SRC_TOOLS_TRACE_READER_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace xk::tracetool {

// One layer-crossing span: a Push/Pop/Demux/Open/Intr on `proto` at `host`.
struct SpanRec {
  std::string host;
  std::string proto;
  std::string op;
  std::string status;
  uint64_t sess = 0;   // session trace id (0 = none)
  uint64_t msg = 0;    // message trace id (0 = none)
  uint64_t len = 0;    // message length at entry
  int64_t t0 = 0;      // sim ns at entry
  int64_t t1 = 0;      // sim ns at exit
  int64_t incl = 0;    // charged cost inside the span, children included
  int64_t excl = 0;    // charged cost minus child spans
  uint64_t depth = 0;  // nesting depth at entry (0 = outermost)
};

// One frame transmission on a segment.
struct WireRec {
  int64_t seg = 0;
  int64_t t0 = 0;      // tx start
  int64_t t1 = 0;      // tx end (bus released)
  int64_t arrive = 0;  // delivery time at receivers
  uint64_t len = 0;    // frame bytes
  uint64_t qdepth = 0; // frames waiting behind the bus at tx start
  int64_t qwait = 0;   // ns this frame waited for the bus
  uint64_t msg = 0;    // trace id of the carried message (0 = untracked)
};

// One point event: a cluster-tier decision (issue/done/exec, retransmit,
// reroute, replica down/readmit, eviction, router forward) bound to an
// oracle call id and/or message trace id.
struct EventRec {
  std::string host;
  std::string proto;
  std::string op;
  std::string status;
  int64_t t = 0;
  uint64_t call = 0;    // oracle call id (0 = not call-bound)
  uint64_t msg = 0;     // message trace id (0 = none)
  uint64_t sess = 0;    // session trace id (0 = none)
  uint64_t detail = 0;  // op-specific: retry #, replica idx, ttl, idle ns...
};

// One structured log record (from Kernel::Tracef).
struct LogRec {
  std::string host;
  std::string text;
  int64_t t = 0;
  int64_t level = 0;
};

struct TraceFile {
  std::vector<SpanRec> spans;
  std::vector<WireRec> wires;
  std::vector<LogRec> logs;
  std::vector<EventRec> events;
  uint64_t dropped = 0;  // records the sink discarded at capacity
};

namespace detail {

inline bool ParseQuoted(const std::string& s, size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') {
    return false;
  }
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i++];
    if (c == '"') {
      return true;
    }
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i >= s.size()) {
      return false;
    }
    const char e = s[i++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 > s.size()) {
          return false;
        }
        unsigned v = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[i++];
          v <<= 4;
          if (h >= '0' && h <= '9') {
            v |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            v |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            v |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        out += static_cast<char>(v);  // the writer only emits \u00xx
        break;
      }
      default:
        return false;
    }
  }
  return false;
}

// A flat object's fields, split by value type.
struct FlatObj {
  std::vector<std::pair<std::string, std::string>> strs;
  std::vector<std::pair<std::string, int64_t>> ints;

  const std::string* str(const char* key) const {
    for (const auto& [k, v] : strs) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  int64_t num(const char* key) const {
    for (const auto& [k, v] : ints) {
      if (k == key) {
        return v;
      }
    }
    return 0;
  }
};

inline bool ParseFlatObject(const std::string& line, FlatObj& obj) {
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
    ++i;
  }
  if (i >= line.size() || line[i] != '{') {
    return false;
  }
  ++i;
  std::string key;
  std::string sval;
  while (i < line.size()) {
    if (line[i] == '}') {
      return true;
    }
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (!ParseQuoted(line, i, key)) {
      return false;
    }
    if (i >= line.size() || line[i] != ':') {
      return false;
    }
    ++i;
    if (i < line.size() && line[i] == '"') {
      if (!ParseQuoted(line, i, sval)) {
        return false;
      }
      obj.strs.emplace_back(key, sval);
    } else {
      bool neg = false;
      if (i < line.size() && line[i] == '-') {
        neg = true;
        ++i;
      }
      if (i >= line.size() || line[i] < '0' || line[i] > '9') {
        return false;
      }
      int64_t v = 0;
      while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        v = v * 10 + (line[i] - '0');
        ++i;
      }
      obj.ints.emplace_back(key, neg ? -v : v);
    }
  }
  return false;
}

inline std::string StrOr(const FlatObj& o, const char* key) {
  const std::string* s = o.str(key);
  return s != nullptr ? *s : std::string();
}

}  // namespace detail

// Parses a whole JSONL trace. Unknown record kinds and malformed lines are
// skipped so newer writers stay readable.
inline TraceFile Parse(const std::string& text) {
  TraceFile tf;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      nl = text.size();
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) {
      continue;
    }
    detail::FlatObj o;
    if (!detail::ParseFlatObject(line, o)) {
      continue;
    }
    const std::string kind = detail::StrOr(o, "k");
    if (kind == "span") {
      SpanRec r;
      r.host = detail::StrOr(o, "host");
      r.proto = detail::StrOr(o, "proto");
      r.op = detail::StrOr(o, "op");
      r.status = detail::StrOr(o, "status");
      r.sess = static_cast<uint64_t>(o.num("sess"));
      r.msg = static_cast<uint64_t>(o.num("msg"));
      r.len = static_cast<uint64_t>(o.num("len"));
      r.t0 = o.num("t0");
      r.t1 = o.num("t1");
      r.incl = o.num("incl");
      r.excl = o.num("excl");
      r.depth = static_cast<uint64_t>(o.num("depth"));
      tf.spans.push_back(std::move(r));
    } else if (kind == "wire") {
      WireRec r;
      r.seg = o.num("seg");
      r.t0 = o.num("t0");
      r.t1 = o.num("t1");
      r.arrive = o.num("arrive");
      r.len = static_cast<uint64_t>(o.num("len"));
      r.qdepth = static_cast<uint64_t>(o.num("qd"));
      r.qwait = o.num("qw");
      r.msg = static_cast<uint64_t>(o.num("msg"));
      tf.wires.push_back(r);
    } else if (kind == "ev") {
      EventRec r;
      r.host = detail::StrOr(o, "host");
      r.proto = detail::StrOr(o, "proto");
      r.op = detail::StrOr(o, "op");
      r.status = detail::StrOr(o, "status");
      r.t = o.num("t");
      r.call = static_cast<uint64_t>(o.num("call"));
      r.msg = static_cast<uint64_t>(o.num("msg"));
      r.sess = static_cast<uint64_t>(o.num("sess"));
      r.detail = static_cast<uint64_t>(o.num("detail"));
      tf.events.push_back(std::move(r));
    } else if (kind == "log") {
      LogRec r;
      r.host = detail::StrOr(o, "host");
      r.text = detail::StrOr(o, "text");
      r.t = o.num("t");
      r.level = o.num("level");
      tf.logs.push_back(std::move(r));
    } else if (kind == "meta") {
      tf.dropped += static_cast<uint64_t>(o.num("dropped"));
    }
  }
  return tf;
}

// Reads and parses a trace file; empty TraceFile on I/O error.
inline TraceFile Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return {};
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return Parse(text);
}

// Aggregated exclusive cost of one (host, protocol, op) layer crossing.
struct LayerStat {
  std::string host;
  std::string proto;
  std::string op;
  uint64_t count = 0;
  int64_t excl_total = 0;  // ns
};

// Aggregated wire activity on one Ethernet segment.
struct SegmentStat {
  int64_t seg = 0;
  uint64_t frames = 0;
  uint64_t bytes = 0;
  int64_t busy = 0;           // ns the bus was transmitting
  uint64_t queued = 0;        // frames that waited (qwait > 0)
  uint64_t peak_depth = 0;    // max queue depth observed at any tx start
  uint64_t depth_sum = 0;     // sum of per-frame queue depths (for the mean)
  int64_t wait_total = 0;     // ns, sum of per-frame bus waits
  int64_t wait_max = 0;       // ns, worst single-frame bus wait
};

// Per-router forwarding activity, aggregated from IP's point events.
struct RouterStat {
  std::string host;
  uint64_t forwards = 0;
  uint64_t ttl_drops = 0;
  uint64_t no_route_drops = 0;
};

// Per-layer breakdown plus a per-call latency estimate built from the trace.
//
// The estimate is timestamp-based: the elapsed simulated time from the first
// observed record to the last, divided by the call count. For a serial
// latency workload this is exactly what the benchmark reports, because the
// clock advances only through the charged costs and wire delays the trace
// records. The cpu/wire/propagation totals decompose where that time went --
// their sum can exceed the elapsed time when CPU work overlaps an in-flight
// frame (e.g. CHANNEL arming its retransmit timer while the request is on
// the wire).
//
// Calls are inferred as the minimum push-span count over (host, protocol)
// pairs -- every layer pushes at least once per call, and retransmitting
// layers push more, so the minimum is the call count.
struct Breakdown {
  std::vector<LayerStat> layers;     // sorted by (host, proto, op)
  std::vector<SegmentStat> segments; // sorted by segment id
  std::vector<RouterStat> routers;   // sorted by host; hosts that forwarded or dropped
  uint64_t calls = 1;
  int64_t cpu_total = 0;   // ns, sum of span exclusive costs
  int64_t wire_total = 0;  // ns, sum of frame transmission times
  int64_t prop_total = 0;  // ns, sum of propagation delays
  int64_t t_min = 0;       // ns, earliest record timestamp
  int64_t t_max = 0;       // ns, latest record timestamp
  int64_t elapsed() const { return t_max - t_min; }

  double PerCallUsec() const {
    return static_cast<double>(elapsed()) /
           (1000.0 * static_cast<double>(calls == 0 ? 1 : calls));
  }
};

inline Breakdown Analyze(const TraceFile& tf, uint64_t forced_calls = 0) {
  Breakdown b;
  std::map<std::tuple<std::string, std::string, std::string>, LayerStat> layers;
  std::map<std::pair<std::string, std::string>, uint64_t> pushes;
  bool have_t = false;
  auto see = [&](int64_t t0, int64_t t1) {
    if (!have_t) {
      b.t_min = t0;
      b.t_max = t1;
      have_t = true;
      return;
    }
    b.t_min = std::min(b.t_min, t0);
    b.t_max = std::max(b.t_max, t1);
  };
  for (const SpanRec& s : tf.spans) {
    LayerStat& st = layers[{s.host, s.proto, s.op}];
    if (st.count == 0) {
      st.host = s.host;
      st.proto = s.proto;
      st.op = s.op;
    }
    ++st.count;
    st.excl_total += s.excl;
    b.cpu_total += s.excl;
    see(s.t0, s.t1);
    if (s.op == "push") {
      ++pushes[{s.host, s.proto}];
    }
  }
  std::map<int64_t, SegmentStat> segs;
  for (const WireRec& w : tf.wires) {
    b.wire_total += w.t1 - w.t0;
    b.prop_total += w.arrive - w.t1;
    see(w.t0, w.arrive);
    SegmentStat& sg = segs[w.seg];
    sg.seg = w.seg;
    ++sg.frames;
    sg.bytes += w.len;
    sg.busy += w.t1 - w.t0;
    if (w.qwait > 0) {
      ++sg.queued;
    }
    sg.depth_sum += w.qdepth;
    sg.peak_depth = std::max(sg.peak_depth, w.qdepth);
    sg.wait_total += w.qwait;
    sg.wait_max = std::max(sg.wait_max, w.qwait);
  }
  b.segments.reserve(segs.size());
  for (auto& [id, sg] : segs) {
    b.segments.push_back(sg);
  }
  std::map<std::string, RouterStat> routers;
  for (const EventRec& e : tf.events) {
    if (e.op != "forward" && e.op != "ttl_drop" && e.op != "no_route") {
      continue;
    }
    RouterStat& rt = routers[e.host];
    rt.host = e.host;
    if (e.op == "forward") {
      ++rt.forwards;
    } else if (e.op == "ttl_drop") {
      ++rt.ttl_drops;
    } else {
      ++rt.no_route_drops;
    }
  }
  b.routers.reserve(routers.size());
  for (auto& [host, rt] : routers) {
    b.routers.push_back(std::move(rt));
  }
  b.layers.reserve(layers.size());
  for (auto& [key, st] : layers) {
    b.layers.push_back(std::move(st));
  }
  if (forced_calls > 0) {
    b.calls = forced_calls;
  } else {
    uint64_t min_pushes = 0;
    for (const auto& [key, n] : pushes) {
      if (n > 0 && (min_pushes == 0 || n < min_pushes)) {
        min_pushes = n;
      }
    }
    b.calls = min_pushes > 0 ? min_pushes : 1;
  }
  return b;
}

}  // namespace xk::tracetool

#endif  // XK_SRC_TOOLS_TRACE_READER_H_
