// Tracing subsystem invariants: attaching observers never perturbs the
// simulation, traces are deterministic, the link counts fault-injection
// outcomes, and Tracef routes through the structured sink.

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/trace/pcap.h"
#include "src/trace/trace.h"

namespace xk {
namespace {

RpcBench::Builder MVip() {
  return [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); };
}

// Installs thread-default observers for the duration of a scope.
struct ScopedObservers {
  ScopedObservers(TraceSink* sink, PacketCapture* capture) {
    TraceSink::set_thread_default(sink);
    PacketCapture::set_thread_default(capture);
  }
  ~ScopedObservers() {
    TraceSink::set_thread_default(nullptr);
    PacketCapture::set_thread_default(nullptr);
  }
};

// The zero-simulated-cost invariant: a fully traced benchmark run reports
// bit-identical simulated numbers to an untraced one. Exact floating-point
// equality is deliberate -- the sinks must not charge costs, consume random
// numbers, or schedule events.
TEST(TraceZeroCost, TracedRunMatchesUntracedExactly) {
  const ConfigResult plain = RpcBench::Measure("M_RPC-VIP", MVip());

  TraceSink sink;
  PacketCapture capture;
  ConfigResult traced;
  {
    ScopedObservers obs(&sink, &capture);
    traced = RpcBench::Measure("M_RPC-VIP", MVip());
  }

  EXPECT_EQ(plain.latency_ms, traced.latency_ms);
  EXPECT_EQ(plain.throughput_kbs, traced.throughput_kbs);
  EXPECT_EQ(plain.incr_ms_per_kb, traced.incr_ms_per_kb);
  EXPECT_EQ(plain.client_cpu_ms, traced.client_cpu_ms);
  EXPECT_EQ(plain.server_cpu_ms, traced.server_cpu_ms);
  EXPECT_EQ(plain.events_fired, traced.events_fired);

  // And the observers actually observed the run.
  EXPECT_GT(sink.num_records(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_GT(capture.size(), 0u);
}

std::pair<std::string, std::string> TracedEchoRun() {
  TraceSink sink;
  PacketCapture capture;
  ScopedObservers obs(&sink, &capture);
  EchoExperiment e = MakeEchoExperiment(/*layers=*/2);
  (void)RpcWorkload::MeasureLatency(*e.net, *e.ch->kernel, e.MakeCall(), 16);
  return {sink.ToJsonl(), capture.ToJsonl()};
}

// Same configuration, same seed => byte-identical trace and capture files.
TEST(TraceDeterminism, ByteIdenticalAcrossRuns) {
  const auto [trace_a, pcap_a] = TracedEchoRun();
  const auto [trace_b, pcap_b] = TracedEchoRun();
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(pcap_a, pcap_b);
  EXPECT_GT(trace_a.size(), 100u);
  EXPECT_GT(pcap_a.size(), 100u);
}

// Fault-injection outcomes are counted per cause on the link, captured with
// the right verdicts, and surfaced in the counters export.
TEST(TraceFaults, OutcomesCountedAndCaptured) {
  PacketCapture capture;
  EchoExperiment e;
  {
    ScopedObservers obs(nullptr, &capture);
    e = MakeEchoExperiment(/*layers=*/2);  // CHANNEL retransmits through drops
  }
  e.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t delivery_index) {
    switch (delivery_index) {
      case 2:
        return LinkFault::kDrop;
      case 5:
        return LinkFault::kDuplicate;
      case 8:
        return LinkFault::kCorrupt;
      default:
        return LinkFault::kDeliver;
    }
  });
  LatencyResult lat = RpcWorkload::MeasureLatency(*e.net, *e.ch->kernel, e.MakeCall(), 8);
  EXPECT_EQ(lat.completed, 8);

  EthernetSegment& seg = e.net->segment(0);
  EXPECT_EQ(seg.fault_drops(), 1u);
  EXPECT_EQ(seg.fault_duplicates(), 1u);
  EXPECT_EQ(seg.fault_corruptions(), 1u);
  EXPECT_EQ(seg.frames_dropped(), 1u);  // no random drops configured
  EXPECT_EQ(seg.random_drops(), 0u);

  EXPECT_EQ(capture.verdict_count(CaptureVerdict::kDropped), 1u);
  EXPECT_EQ(capture.verdict_count(CaptureVerdict::kDuplicated), 1u);
  EXPECT_EQ(capture.verdict_count(CaptureVerdict::kCorrupted), 1u);
  EXPECT_GT(capture.verdict_count(CaptureVerdict::kDelivered), 0u);

  const std::string json = e.net->CountersJson();
  EXPECT_NE(json.find("\"fault_drops\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fault_duplicates\":1"), std::string::npos);
  EXPECT_NE(json.find("\"fault_corruptions\":1"), std::string::npos);
}

// Tracef records a structured log event whenever a sink is attached, even at
// levels the stderr fallback suppresses.
TEST(TraceLog, TracefRoutesToSink) {
  TraceSink sink;
  std::unique_ptr<Internet> net;
  {
    ScopedObservers obs(&sink, nullptr);
    net = Internet::TwoHosts();
  }
  Kernel& k = *net->host("client").kernel;
  ASSERT_LT(k.trace_level(), 9);  // level 9 would not reach stderr
  k.Tracef(9, "trace test %d", 42);
  const std::string jsonl = sink.ToJsonl();
  EXPECT_NE(jsonl.find("\"k\":\"log\""), std::string::npos);
  EXPECT_NE(jsonl.find("trace test 42"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"host\":\"client\""), std::string::npos);
}

// Per-protocol counters reflect real traffic after an RPC exchange.
TEST(TraceCounters, ExportReflectsTraffic) {
  EchoExperiment e = MakeEchoExperiment(/*layers=*/2);
  (void)RpcWorkload::MeasureLatency(*e.net, *e.ch->kernel, e.MakeCall(), 8);

  uint64_t vip_msgs_out = 0;
  uint64_t vip_map_hits = 0;
  e.ch->kernel->ForEachProtocol([&](const Protocol& p) {
    if (p.name() == "vip") {
      p.ExportCounters([&](std::string_view name, uint64_t value) {
        if (name == "msgs_out") {
          vip_msgs_out = value;
        } else if (name == "map_hits") {
          vip_map_hits = value;
        }
      });
    }
  });
  EXPECT_GT(vip_msgs_out, 0u);
  EXPECT_GT(vip_map_hits, 0u);

  const std::string json = e.net->CountersJson();
  EXPECT_NE(json.find("\"protocol\":\"vip\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol\":\"channel\""), std::string::npos);
  EXPECT_NE(json.find("\"calls_sent\":8"), std::string::npos) << json;
}

}  // namespace
}  // namespace xk
