// Deterministic fault campaigns: a declarative timeline of link faults and
// host crashes, executed bit-identically under the serial and parallel
// engines.
//
// A FaultPlan is a list of clauses -- segment partitions with heal times,
// windowed drop rates, Gilbert-Elliott bursty loss, duplicate storms, delay
// spikes, corruption windows, and scheduled host crash/restart. A FaultEngine
// installs the plan on an Internet: link clauses become the per-segment
// fault hook (consulted once per frame, in canonical delivery order), crash
// clauses become scheduled tasks that drive Internet::CrashHost/RestartHost.
//
// Determinism: every random draw comes from a per-segment SplitMix64 stream
// seeded from the plan, and draws happen only while at least one clause is
// active on that segment -- fault-free windows consume no randomness, so
// adding a fault window never perturbs traffic outside it. The hook runs only
// in serial contexts (frame commit happens at epoch barriers under the
// parallel engine), so plans are engine-invariant by construction.

#ifndef XK_SRC_SIM_FAULT_H_
#define XK_SRC_SIM_FAULT_H_

#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/sim/link.h"
#include "src/sim/rng.h"

namespace xk {

class Internet;

// One entry in a fault timeline. Link clauses apply to frames whose arrival
// time falls in [from, until) on a matching segment (`segment` < 0 matches
// every segment; `until` == 0 leaves the window open-ended). Crash clauses
// ignore the window fields and use host/at/restart_at.
struct FaultClause {
  enum class Kind : uint8_t {
    kPartition,       // drop every frame in the window (heals at `until`)
    kDropWindow,      // drop each frame with probability `rate`
    kGilbertElliott,  // 2-state bursty loss: p_enter/p_exit, loss_good/loss_bad
    kDuplicateStorm,  // duplicate each frame with probability `rate`
    kDelaySpike,      // add `delay` with probability `rate`
    kCorruptWindow,   // flip one random byte with probability `rate`
    kCrash,           // crash `host` at `at`; restart at `restart_at` (0: never)
  };

  Kind kind = Kind::kDropWindow;
  int segment = -1;  // link clauses: -1 matches all segments
  SimTime from = 0;
  SimTime until = 0;
  double rate = 1.0;
  SimTime delay = 0;  // kDelaySpike

  // kGilbertElliott: per-frame state machine stepped while the window is
  // active; loss probability depends on the current (good/bad) state.
  double p_enter = 0.0;
  double p_exit = 1.0;
  double loss_good = 0.0;
  double loss_bad = 1.0;

  // kCrash
  std::string host;
  SimTime at = 0;
  SimTime restart_at = 0;
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultClause> clauses;

  // --- fluent builders --------------------------------------------------------
  FaultPlan& Partition(int segment, SimTime from, SimTime until);
  FaultPlan& DropWindow(int segment, SimTime from, SimTime until, double rate);
  FaultPlan& GilbertElliott(int segment, SimTime from, SimTime until, double p_enter,
                            double p_exit, double loss_good, double loss_bad);
  FaultPlan& DuplicateStorm(int segment, SimTime from, SimTime until, double rate);
  FaultPlan& DelaySpike(int segment, SimTime from, SimTime until, double rate, SimTime delay);
  FaultPlan& CorruptWindow(int segment, SimTime from, SimTime until, double rate);
  FaultPlan& Crash(const std::string& host, SimTime at, SimTime restart_at = 0);

  bool empty() const { return clauses.empty(); }
  bool HasLinkClauses() const;
  bool HasCrashClauses() const;

  // Textual form, used by bench_suite's --faults= flag. Clauses are separated
  // by ';'; each is kind:key=value,... with times as <n>ns|us|ms|s. Example:
  //   crash:host=server,at=500ms,restart=900ms;drop:seg=0,from=100ms,until=300ms,rate=0.05;seed:42
  // Parse fills `out` and returns true, or returns false with a message in
  // `error`. ToString() emits the same form (Parse(ToString()) round-trips).
  static bool Parse(const std::string& spec, FaultPlan* out, std::string* error);
  std::string ToString() const;
};

// Installs a FaultPlan on an Internet for the engine's lifetime. Construct it
// after the topology is built (hooks attach to the segments that exist) and
// keep it alive across RunAll; the destructor detaches the hooks.
class FaultEngine {
 public:
  FaultEngine(Internet& net, FaultPlan plan);
  ~FaultEngine();

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // Frames inspected by the link-fault hook (diagnostic).
  uint64_t decisions() const { return decisions_; }

 private:
  struct SegmentState {
    Rng rng;
    bool ge_bad = false;  // Gilbert-Elliott chain state
  };

  DeliveryFault Decide(int segment_id, const EthFrame& frame, SimTime arrival);

  Internet& net_;
  FaultPlan plan_;
  std::vector<SegmentState> segs_;
  bool hooks_installed_ = false;
  uint64_t decisions_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_SIM_FAULT_H_
