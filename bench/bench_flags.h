// Command-line parsing for bench_suite, split out of main() so the error
// paths are unit-testable (tests/bench_flags_test.cc). Every failure names
// the offending flag and token instead of silently clamping (std::atoi
// would turn --threads=abc into 1) or printing only a generic usage line.

#ifndef XK_BENCH_BENCH_FLAGS_H_
#define XK_BENCH_BENCH_FLAGS_H_

#include <cstdlib>
#include <cstring>
#include <string>

namespace xk {

struct Options {
  unsigned threads = 1;
  std::string out_path = "BENCH_RESULTS.json";
  std::string trace_dir;
  std::string pcap_dir;
  std::string stats_dir;   // per-job time-series JSONL (--stats=DIR)
  std::string flow_dir;    // per-job causal flow + folded stacks (--flow=DIR)
  std::string filter;      // ECMAScript regex matched against "group.name"
  std::string faults;      // FaultPlan spec (--faults=): adds a chaos.custom job
  std::string arrivals;    // ArrivalSpec (--arrivals=): adds a datacenter.custom job
  int engine_threads = 1;  // simulation-engine width for every job
  int speedup_threads = 0; // >1 runs the wall-clock speedup phase
  int session_scale = 0;   // >0 adds a session_scale.nN job at this size
  bool list = false;
  bool stable = false;     // omit wall-clock fields from the JSON
};

namespace bench_flags_internal {

// Parses `value` as a base-10 integer >= `min`; on failure writes a message
// naming the flag and the offending token.
inline bool ParseFlagInt(const char* flag, const char* value, long min, int* out,
                         std::string* error) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    *error = std::string(flag) + ": bad value '" + value + "' (expected an integer)";
    return false;
  }
  if (v < min) {
    *error = std::string(flag) + ": bad value '" + value + "' (must be >= " +
             std::to_string(min) + ")";
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace bench_flags_internal

// Parses argv into `opt` (fields not mentioned keep their current values).
// Returns true on success; on failure fills `error` with a message naming
// the offending flag or token.
inline bool ParseBenchArgs(int argc, char** argv, Options* opt, std::string* error) {
  using bench_flags_internal::ParseFlagInt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int n = 0;
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!ParseFlagInt("--threads", arg + 10, 1, &n, error)) {
        return false;
      }
      opt->threads = static_cast<unsigned>(n);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt->out_path = arg + 6;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      opt->trace_dir = arg + 8;
    } else if (std::strncmp(arg, "--pcap=", 7) == 0) {
      opt->pcap_dir = arg + 7;
    } else if (std::strncmp(arg, "--stats=", 8) == 0) {
      opt->stats_dir = arg + 8;
    } else if (std::strncmp(arg, "--flow=", 7) == 0) {
      opt->flow_dir = arg + 7;
    } else if (std::strncmp(arg, "--filter=", 9) == 0) {
      opt->filter = arg + 9;
    } else if (std::strncmp(arg, "--faults=", 9) == 0) {
      opt->faults = arg + 9;
    } else if (std::strncmp(arg, "--arrivals=", 11) == 0) {
      opt->arrivals = arg + 11;
    } else if (std::strncmp(arg, "--session-scale=", 16) == 0) {
      if (!ParseFlagInt("--session-scale", arg + 16, 1, &n, error)) {
        return false;
      }
      opt->session_scale = n;
    } else if (std::strncmp(arg, "--engine-threads=", 17) == 0) {
      if (!ParseFlagInt("--engine-threads", arg + 17, 1, &n, error)) {
        return false;
      }
      opt->engine_threads = n;
    } else if (std::strncmp(arg, "--engine-speedup=", 17) == 0) {
      if (!ParseFlagInt("--engine-speedup", arg + 17, 2, &n, error)) {
        return false;
      }
      opt->speedup_threads = n;
    } else if (std::strcmp(arg, "--engine-speedup") == 0) {
      opt->speedup_threads = 4;
    } else if (std::strcmp(arg, "--list") == 0) {
      opt->list = true;
    } else if (std::strcmp(arg, "--stable") == 0) {
      opt->stable = true;
    } else {
      *error = "unknown flag '" + std::string(arg) + "'";
      return false;
    }
  }
  return true;
}

}  // namespace xk

#endif  // XK_BENCH_BENCH_FLAGS_H_
